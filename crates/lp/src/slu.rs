//! Sparse LU factorization and the simplex basis engine.
//!
//! Two factorization entry points share one factor representation
//! ([`SparseLu`], permutation-indexed triangular factors stored by
//! elimination step):
//!
//! * [`SparseLu::factor_dense_compat`] — partial pivoting in the *exact*
//!   pivot order of [`crate::linsys::lu_factor`] (largest magnitude,
//!   first-in-physical-order tie break, `1e-13` singularity threshold).
//!   Every floating-point operation a [`SparseLu::solve`] performs is one
//!   the dense reference performs on the same data — skipped operations
//!   are exact no-ops (zero multiplier or zero stored entry) — so solves
//!   agree *bit for bit* with [`crate::linsys::LuFactors::solve`]. The
//!   replay engine caches these factors per failure state.
//! * [`SparseLu::factor_basis`] — Markowitz-ordered elimination with
//!   threshold pivoting for simplex basis matrices, minimizing fill
//!   (cost `(col_count-1)·(row_count-1)`) subject to
//!   `|pivot| >= 0.1 · colmax`. Candidate columns are examined in
//!   ascending active-count order with a deterministic cap.
//!
//! [`BasisEngine`] wraps a core factorization plus an ordered op file:
//! product-form **eta** updates (one per simplex pivot, the
//! Forrest–Tomlin-style alternative of keeping the update sparse instead
//! of re-forming an inverse) and **border** extensions (the block
//! `[[B, 0], [C, D]]` step a warm start performs when rows are appended).
//! Ops compose in append order for ftran and reverse order for btran, so
//! borders and etas may interleave arbitrarily: a warm start never forces
//! a refactorization.
//!
//! Everything here iterates `Vec`s and `BTreeSet`s in index order — no
//! hash maps — so factorization and solves are deterministic.

use crate::float::nonzero;
use crate::linsys::{DenseMatrix, LinSysError};
use crate::sparse::CscMatrix;
use std::collections::BTreeSet;

/// Relative pivot threshold for Markowitz elimination: a candidate must be
/// at least this fraction of its column's largest magnitude.
const MARKOWITZ_THRESHOLD: f64 = 0.1;
/// Columns examined per Markowitz pivot search (ascending active count).
const MARKOWITZ_EXAMINE: usize = 16;
/// A basis column whose largest active entry is below this is unusable as
/// a pivot column (matches the dense reinversion threshold).
const BASIS_SINGULAR_TOL: f64 = 1e-12;

/// Sparse LU factors `B = P^T L U Q`, stored by elimination step.
///
/// `rperm[k]`/`cperm[k]` are the original row/column eliminated at step
/// `k`; `lcols[k]` holds the unit-lower-triangular multipliers created at
/// step `k` (targets are *step* indices `> k`); `urows[k]` holds the
/// upper-triangular row of step `k` (sources are step indices `> k`,
/// ascending); `pivots[k]` is the diagonal.
#[derive(Debug, Clone)]
pub struct SparseLu {
    n: usize,
    rperm: Vec<u32>,
    cperm: Vec<u32>,
    lcols: Vec<Vec<(u32, f64)>>,
    urows: Vec<Vec<(u32, f64)>>,
    pivots: Vec<f64>,
}

impl SparseLu {
    /// Dimension of the factored matrix.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Stored factor entries (L + U + diagonal).
    pub fn nnz(&self) -> usize {
        let l: usize = self.lcols.iter().map(Vec::len).sum();
        let u: usize = self.urows.iter().map(Vec::len).sum();
        l + u + self.pivots.len()
    }

    /// Factors a dense matrix with the same pivot order, singularity
    /// threshold, and floating-point operations as
    /// [`crate::linsys::lu_factor`]; see the module docs for why solves
    /// then match the dense reference bit for bit.
    pub fn factor_dense_compat(m: &DenseMatrix) -> Result<SparseLu, LinSysError> {
        let n = m.n();
        let cols: Vec<Vec<(u32, f64)>> = (0..n)
            .map(|j| {
                (0..n)
                    .filter_map(|i| {
                        let v = m.get(i, j);
                        nonzero(v).then_some((i as u32, v))
                    })
                    .collect()
            })
            .collect();
        factor_partial_pivot(n, cols)
    }

    /// Factors the basis matrix whose columns are `a.col(basis[p])` for
    /// each basis position `p`, choosing pivots by Markowitz cost with
    /// threshold pivoting.
    pub fn factor_basis(a: &CscMatrix, basis: &[usize]) -> Result<SparseLu, LinSysError> {
        let n = basis.len();
        let cols: Vec<Vec<(u32, f64)>> = basis
            .iter()
            .map(|&j| {
                a.col_iter(j)
                    .filter_map(|(i, v)| nonzero(v).then_some((i as u32, v)))
                    .collect()
            })
            .collect();
        factor_markowitz(n, cols)
    }

    /// Solves `B x = b` (allocating); bit-identical to
    /// [`crate::linsys::LuFactors::solve`] when the factors came from
    /// [`SparseLu::factor_dense_compat`].
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        // audit:allow(panic-reachability, dimension guard; every caller passes an rhs sized by the factored basis)
        assert_eq!(b.len(), self.n, "rhs dimension mismatch");
        let mut z = vec![0.0; self.n];
        self.solve_scratch(b, &mut z);
        let mut x = vec![0.0; self.n];
        for k in 0..self.n {
            x[self.cperm[k] as usize] = z[k];
        }
        x
    }

    /// `x <- B^{-1} x` using a caller-provided scratch buffer of length
    /// `n` (the simplex ftran).
    pub fn ftran_in_place(&self, x: &mut [f64], scratch: &mut Vec<f64>) {
        scratch.clear();
        scratch.resize(self.n, 0.0);
        self.solve_scratch(x, scratch);
        for k in 0..self.n {
            x[self.cperm[k] as usize] = scratch[k];
        }
    }

    /// Forward + backward substitution in step space: `z` solves
    /// `L U z = P b`.
    fn solve_scratch(&self, b: &[f64], z: &mut [f64]) {
        let n = self.n;
        for k in 0..n {
            z[k] = b[self.rperm[k] as usize];
        }
        for k in 0..n {
            let v = z[k];
            if nonzero(v) {
                for &(t, l) in &self.lcols[k] {
                    z[t as usize] -= l * v;
                }
            }
        }
        for k in (0..n).rev() {
            let mut acc = z[k];
            for &(c, u) in &self.urows[k] {
                acc -= u * z[c as usize];
            }
            z[k] = acc / self.pivots[k];
        }
    }

    /// `y <- B^{-T} y` using a caller-provided scratch buffer of length
    /// `n` (the simplex btran).
    pub fn btran_in_place(&self, y: &mut [f64], scratch: &mut Vec<f64>) {
        let n = self.n;
        scratch.clear();
        scratch.resize(n, 0.0);
        let z = &mut scratch[..];
        // B^T = Q^T U^T L^T P: gather by cperm, then U^T (forward), L^T
        // (backward), scatter by rperm.
        for k in 0..n {
            z[k] = y[self.cperm[k] as usize];
        }
        for k in 0..n {
            let w = z[k] / self.pivots[k];
            z[k] = w;
            if nonzero(w) {
                for &(c, u) in &self.urows[k] {
                    z[c as usize] -= u * w;
                }
            }
        }
        for k in (0..n).rev() {
            let mut acc = z[k];
            for &(t, l) in &self.lcols[k] {
                acc -= l * z[t as usize];
            }
            z[k] = acc;
        }
        for k in 0..n {
            y[self.rperm[k] as usize] = z[k];
        }
    }
}

/// Shared elimination workspace: active columns plus row membership.
struct Active {
    /// Active entries per column: rows not yet eliminated. Order within a
    /// column is maintained deterministically but is not sorted.
    cols: Vec<Vec<(u32, f64)>>,
    /// For each row, the set of active columns containing it.
    row_cols: Vec<BTreeSet<u32>>,
    /// Dense scatter workspace keyed by original row, with an epoch mark.
    work: Vec<f64>,
    mark: Vec<usize>,
    epoch: usize,
}

impl Active {
    fn new(n: usize, cols: Vec<Vec<(u32, f64)>>) -> Self {
        let mut row_cols: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); n];
        for (j, col) in cols.iter().enumerate() {
            for &(i, _) in col {
                row_cols[i as usize].insert(j as u32);
            }
        }
        Active {
            cols,
            row_cols,
            work: vec![0.0; n],
            mark: vec![usize::MAX; n],
            epoch: 0,
        }
    }

    /// Eliminates pivot `(p, piv)` sitting in column `jcol`: extracts the
    /// L multipliers from the pivot column, the U row across the remaining
    /// active columns (ascending column order), and applies the rank-one
    /// update to every affected column. Returns `(l_entries, u_entries)`
    /// with original row / column indices.
    #[allow(clippy::type_complexity)]
    fn eliminate(&mut self, jcol: usize, p: usize, piv: f64) -> (Vec<(u32, f64)>, Vec<(u32, f64)>) {
        // L multipliers from the pivot column (exact zeros dropped: they
        // are no-ops both as updates and in later solves).
        let mut lk: Vec<(u32, f64)> = Vec::new();
        for &(i, v) in &self.cols[jcol] {
            if i as usize == p {
                continue;
            }
            let f = v / piv;
            if nonzero(f) {
                lk.push((i, f));
            }
        }
        // Detach the pivot column.
        for &(i, _) in &self.cols[jcol] {
            self.row_cols[i as usize].remove(&(jcol as u32));
        }
        self.cols[jcol].clear();
        // The pivot row's remaining active columns, in ascending order
        // (this fixes the U-row entry order and the update order).
        let pivot_row_cols: Vec<u32> = self.row_cols[p].iter().copied().collect();
        self.row_cols[p].clear();
        let mut uk: Vec<(u32, f64)> = Vec::with_capacity(pivot_row_cols.len());
        let mut present: Vec<u32> = Vec::new();
        for &t in &pivot_row_cols {
            let tj = t as usize;
            let Some(idx) = self.cols[tj].iter().position(|&(i, _)| i as usize == p) else {
                continue; // membership and storage disagree; skip defensively
            };
            let (_, u) = self.cols[tj].swap_remove(idx);
            if !nonzero(u) {
                continue; // a zero stored entry updates nothing
            }
            uk.push((t, u));
            // Column update a[r][t] -= f * u via dense scatter, exactly
            // the dense elimination's per-cell operation.
            self.epoch += 1;
            let epoch = self.epoch;
            present.clear();
            let old_len = self.cols[tj].len();
            for &(i, v) in &self.cols[tj] {
                self.work[i as usize] = v;
                self.mark[i as usize] = epoch;
                present.push(i);
            }
            for &(r, f) in &lk {
                let ri = r as usize;
                if self.mark[ri] != epoch {
                    self.work[ri] = 0.0;
                    self.mark[ri] = epoch;
                    present.push(r);
                }
                self.work[ri] -= f * u;
            }
            self.cols[tj].clear();
            for (idx, &i) in present.iter().enumerate() {
                let v = self.work[i as usize];
                let was_old = idx < old_len;
                if nonzero(v) {
                    self.cols[tj].push((i, v));
                    if !was_old {
                        self.row_cols[i as usize].insert(t);
                    }
                } else if was_old {
                    // Exact cancellation: dropping the entry is an exact
                    // no-op for every later operation.
                    self.row_cols[i as usize].remove(&t);
                }
            }
        }
        (lk, uk)
    }
}

/// Partial-pivoting elimination in natural column order, replicating the
/// dense reference's pivot choice (physical-order scan, strict
/// improvement) and singularity threshold.
fn factor_partial_pivot(n: usize, cols: Vec<Vec<(u32, f64)>>) -> Result<SparseLu, LinSysError> {
    let mut act = Active::new(n, cols);
    // phys[pos] = original row currently at physical position `pos`; the
    // dense code swaps rows physically, we swap this view.
    let mut phys: Vec<u32> = (0..n as u32).collect();
    let mut lcols_raw: Vec<Vec<(u32, f64)>> = Vec::with_capacity(n);
    let mut urows_raw: Vec<Vec<(u32, f64)>> = Vec::with_capacity(n);
    let mut pivots = Vec::with_capacity(n);
    let mut rperm = Vec::with_capacity(n);
    for k in 0..n {
        // Scatter column k for value lookups by original row.
        act.epoch += 1;
        let epoch = act.epoch;
        for &(i, v) in &act.cols[k] {
            act.work[i as usize] = v;
            act.mark[i as usize] = epoch;
        }
        let val = |i: u32| {
            if act.mark[i as usize] == epoch {
                act.work[i as usize]
            } else {
                0.0
            }
        };
        let mut p_pos = k;
        let mut best = val(phys[k]).abs();
        for (pos, &row) in phys.iter().enumerate().take(n).skip(k + 1) {
            let v = val(row).abs();
            if v > best {
                best = v;
                p_pos = pos;
            }
        }
        if best < 1e-13 {
            return Err(LinSysError::Singular);
        }
        phys.swap(k, p_pos);
        let p = phys[k] as usize;
        let piv = val(phys[k]);
        rperm.push(p as u32);
        pivots.push(piv);
        let (lk, uk) = act.eliminate(k, p, piv);
        lcols_raw.push(lk);
        urows_raw.push(uk);
    }
    // Natural column order: cperm is the identity and U sources (original
    // column indices) are already step indices, ascending.
    let cperm: Vec<u32> = (0..n as u32).collect();
    Ok(finish(n, rperm, cperm, lcols_raw, urows_raw, pivots, false))
}

/// Markowitz-ordered elimination with threshold pivoting for basis
/// matrices (columns indexed by basis position).
fn factor_markowitz(n: usize, cols: Vec<Vec<(u32, f64)>>) -> Result<SparseLu, LinSysError> {
    let mut act = Active::new(n, cols);
    let mut row_count: Vec<u32> = vec![0; n];
    for rc in act.row_cols.iter().zip(row_count.iter_mut()) {
        *rc.1 = rc.0.len() as u32;
    }
    // (active entry count, column) in ascending order drives the search.
    let mut colorder: BTreeSet<(u32, u32)> = act
        .cols
        .iter()
        .enumerate()
        .map(|(j, c)| (c.len() as u32, j as u32))
        .collect();
    let mut lcols_raw: Vec<Vec<(u32, f64)>> = Vec::with_capacity(n);
    let mut urows_raw: Vec<Vec<(u32, f64)>> = Vec::with_capacity(n);
    let mut pivots = Vec::with_capacity(n);
    let mut rperm = Vec::with_capacity(n);
    let mut cperm = Vec::with_capacity(n);
    for _step in 0..n {
        // ---- Pivot search: best Markowitz cost among a bounded prefix of
        // the sparsest active columns, ties to the larger magnitude, then
        // to the earlier candidate (deterministic scan order). ----
        let mut best: Option<(u64, f64, u32, u32)> = None; // (cost, |v|, col, row)
        for (examined, &(cnt, j)) in colorder.iter().enumerate() {
            if let Some((c, ..)) = best {
                if c == 0 || examined >= MARKOWITZ_EXAMINE {
                    break;
                }
            }
            let col = &act.cols[j as usize];
            debug_assert_eq!(col.len() as u32, cnt);
            let mut colmax = 0.0f64;
            for &(_, v) in col {
                colmax = colmax.max(v.abs());
            }
            if colmax < BASIS_SINGULAR_TOL {
                continue;
            }
            for &(i, v) in col {
                let mag = v.abs();
                if mag < MARKOWITZ_THRESHOLD * colmax {
                    continue;
                }
                let cost = (cnt as u64 - 1) * (row_count[i as usize] as u64 - 1);
                let better = match best {
                    None => true,
                    Some((bc, bm, ..)) => cost < bc || (cost == bc && mag.total_cmp(&bm).is_gt()),
                };
                if better {
                    best = Some((cost, mag, j, i));
                }
            }
        }
        let Some((_, _, j, i)) = best else {
            return Err(LinSysError::Singular);
        };
        let jcol = j as usize;
        let p = i as usize;
        let piv = act.cols[jcol]
            .iter()
            .find(|&&(r, _)| r == i)
            .map(|&(_, v)| v)
            .unwrap_or(0.0);
        if !nonzero(piv) {
            return Err(LinSysError::Singular);
        }
        rperm.push(i);
        cperm.push(j);
        pivots.push(piv);
        // Count bookkeeping must see the state *before* elimination.
        colorder.remove(&(act.cols[jcol].len() as u32, j));
        for &(r, _) in &act.cols[jcol] {
            row_count[r as usize] -= 1;
        }
        // Columns losing their pivot-row entry (and gaining/losing fill)
        // get their counts rebuilt after elimination.
        let touched: Vec<u32> = act.row_cols[p].iter().copied().collect();
        let before: Vec<(u32, u32)> = touched
            .iter()
            .map(|&t| (t, act.cols[t as usize].len() as u32))
            .collect();
        let (lk, uk) = act.eliminate(jcol, p, piv);
        for &(t, old_cnt) in &before {
            colorder.remove(&(old_cnt, t));
            colorder.insert((act.cols[t as usize].len() as u32, t));
        }
        // Fill changes row counts too: recompute for the rows the update
        // touched (the L-entry rows).
        for &(r, _) in &lk {
            row_count[r as usize] = act.row_cols[r as usize].len() as u32;
        }
        lcols_raw.push(lk);
        urows_raw.push(uk);
    }
    Ok(finish(n, rperm, cperm, lcols_raw, urows_raw, pivots, true))
}

/// Remaps raw factor indices (original rows in L, original columns in U)
/// into step space and assembles the [`SparseLu`].
fn finish(
    n: usize,
    rperm: Vec<u32>,
    cperm: Vec<u32>,
    lcols_raw: Vec<Vec<(u32, f64)>>,
    urows_raw: Vec<Vec<(u32, f64)>>,
    pivots: Vec<f64>,
    remap_u: bool,
) -> SparseLu {
    let mut row_step = vec![0u32; n];
    for (k, &r) in rperm.iter().enumerate() {
        row_step[r as usize] = k as u32;
    }
    let lcols: Vec<Vec<(u32, f64)>> = lcols_raw
        .into_iter()
        .map(|col| {
            col.into_iter()
                .map(|(r, f)| (row_step[r as usize], f))
                .collect()
        })
        .collect();
    let urows: Vec<Vec<(u32, f64)>> = if remap_u {
        let mut col_step = vec![0u32; n];
        for (k, &c) in cperm.iter().enumerate() {
            col_step[c as usize] = k as u32;
        }
        urows_raw
            .into_iter()
            .map(|row| {
                let mut row: Vec<(u32, f64)> = row
                    .into_iter()
                    .map(|(c, u)| (col_step[c as usize], u))
                    .collect();
                row.sort_unstable_by_key(|&(c, _)| c);
                row
            })
            .collect()
    } else {
        urows_raw
    };
    SparseLu {
        n,
        rperm,
        cperm,
        lcols,
        urows,
        pivots,
    }
}

/// One entry of the basis-engine op file.
enum BasisOp {
    /// Product-form update: column `entries ∪ {(pos, pivot)}` of
    /// `B^{-1} A_q` replaced basis position `pos`.
    Eta {
        pos: u32,
        pivot: f64,
        entries: Vec<(u32, f64)>,
    },
    /// Bordered extension `[[B, 0], [C, D]]`: `rows[t]` holds the `C`
    /// entries (by basis position `< start`) and diagonal `d` of appended
    /// basis row `start + t`.
    Border {
        start: usize,
        rows: Vec<(Vec<(u32, f64)>, f64)>,
    },
}

/// A sparse simplex basis: a core [`SparseLu`] plus an ordered op file of
/// eta updates and border extensions (see module docs).
pub struct BasisEngine {
    dim: usize,
    core: SparseLu,
    ops: Vec<BasisOp>,
    etas: usize,
    eta_nnz: usize,
}

impl BasisEngine {
    /// Wraps a fresh factorization (op file empty).
    pub fn new(core: SparseLu) -> Self {
        BasisEngine {
            dim: core.n(),
            core,
            ops: Vec::new(),
            etas: 0,
            eta_nnz: 0,
        }
    }

    /// Current basis dimension (core plus borders).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Eta updates applied since the last refactorization.
    pub fn etas(&self) -> usize {
        self.etas
    }

    /// Whether the eta file has grown enough that refactorizing is cheaper
    /// than continuing to apply it (deterministic size heuristic).
    pub fn wants_refactor(&self) -> bool {
        self.eta_nnz > 20 * (self.core.nnz() + self.dim) + 512
    }

    /// Records a product-form update: `d = B^{-1} A_q` replaces basis
    /// position `r`. `d[r]` must be the (nonzero) pivot.
    pub fn push_eta(&mut self, r: usize, d: &[f64]) {
        debug_assert_eq!(d.len(), self.dim);
        let mut entries = Vec::new();
        for (i, &v) in d.iter().enumerate() {
            if i != r && nonzero(v) {
                entries.push((i as u32, v));
            }
        }
        self.eta_nnz += entries.len() + 1;
        self.etas += 1;
        self.ops.push(BasisOp::Eta {
            pos: r as u32,
            pivot: d[r],
            entries,
        });
    }

    /// Extends the basis with appended rows: `rows[t]` is the pair of `C`
    /// entries (old basis positions) and the diagonal of the new basic
    /// column in appended row `t`.
    pub fn append_border(&mut self, rows: Vec<(Vec<(u32, f64)>, f64)>) {
        let start = self.dim;
        self.dim += rows.len();
        self.eta_nnz += rows.iter().map(|(c, _)| c.len() + 1).sum::<usize>();
        self.ops.push(BasisOp::Border { start, rows });
    }

    /// `x <- B^{-1} x` (ftran): core solve on the leading block, then the
    /// op file in append order.
    pub fn ftran(&self, x: &mut [f64], scratch: &mut Vec<f64>) {
        debug_assert_eq!(x.len(), self.dim);
        self.core.ftran_in_place(&mut x[..self.core.n()], scratch);
        for op in &self.ops {
            match op {
                BasisOp::Eta {
                    pos,
                    pivot,
                    entries,
                } => {
                    let r = *pos as usize;
                    let xr = x[r] / pivot;
                    if nonzero(xr) {
                        for &(i, v) in entries {
                            x[i as usize] -= v * xr;
                        }
                    }
                    x[r] = xr;
                }
                BasisOp::Border { start, rows } => {
                    for (t, (c, dt)) in rows.iter().enumerate() {
                        let i = start + t;
                        let mut acc = x[i];
                        for &(p, cv) in c {
                            acc -= cv * x[p as usize];
                        }
                        x[i] = acc / dt;
                    }
                }
            }
        }
    }

    /// `y <- B^{-T} y` (btran): op file in reverse order, then the core.
    pub fn btran(&self, y: &mut [f64], scratch: &mut Vec<f64>) {
        debug_assert_eq!(y.len(), self.dim);
        for op in self.ops.iter().rev() {
            match op {
                BasisOp::Eta {
                    pos,
                    pivot,
                    entries,
                } => {
                    let r = *pos as usize;
                    let mut acc = y[r];
                    for &(i, v) in entries {
                        acc -= v * y[i as usize];
                    }
                    y[r] = acc / pivot;
                }
                BasisOp::Border { start, rows } => {
                    for (t, (c, dt)) in rows.iter().enumerate() {
                        let i = start + t;
                        let w = y[i] / dt;
                        y[i] = w;
                        if nonzero(w) {
                            for &(p, cv) in c {
                                y[p as usize] -= cv * w;
                            }
                        }
                    }
                }
            }
        }
        self.core.btran_in_place(&mut y[..self.core.n()], scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linsys::lu_factor;

    fn dense_from(rows: &[&[f64]]) -> DenseMatrix {
        let n = rows.len();
        let mut m = DenseMatrix::zeros(n);
        for (i, r) in rows.iter().enumerate() {
            for (j, &v) in r.iter().enumerate() {
                m.set(i, j, v);
            }
        }
        m
    }

    #[test]
    fn dense_compat_solve_is_bit_identical() {
        let m = dense_from(&[
            &[4.0, -1.0, 0.0, -1.0],
            &[-2.0, 5.0, -1.0, 0.0],
            &[0.0, -1.0, 3.0, -1.0],
            &[-1.0, 0.0, -2.0, 6.0],
        ]);
        let dense = lu_factor(&m).unwrap();
        let slu = SparseLu::factor_dense_compat(&m).unwrap();
        for b in [
            vec![1.0, 2.0, 3.0, 4.0],
            vec![-0.5, 0.0, 7.25, 1e-9],
            vec![0.0, 0.0, 0.0, 0.0],
        ] {
            let xd = dense.solve(&b);
            let xs = slu.solve(&b);
            for (a, e) in xs.iter().zip(&xd) {
                assert_eq!(a.to_bits(), e.to_bits(), "sparse {a} vs dense {e}");
            }
        }
    }

    #[test]
    fn dense_compat_needs_pivoting() {
        // Zero leading diagonal forces row swaps.
        let m = dense_from(&[&[0.0, 2.0, 1.0], &[1.0, 1.0, 1.0], &[4.0, -1.0, 0.5]]);
        let dense = lu_factor(&m).unwrap();
        let slu = SparseLu::factor_dense_compat(&m).unwrap();
        for k in 0..3 {
            let mut b = vec![0.0; 3];
            b[k] = 1.0;
            let xd = dense.solve(&b);
            let xs = slu.solve(&b);
            for (a, e) in xs.iter().zip(&xd) {
                assert_eq!(a.to_bits(), e.to_bits());
            }
        }
    }

    #[test]
    fn dense_compat_detects_singular_exactly_like_dense() {
        let m = dense_from(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert_eq!(lu_factor(&m).unwrap_err(), LinSysError::Singular);
        assert_eq!(
            SparseLu::factor_dense_compat(&m).unwrap_err(),
            LinSysError::Singular
        );
    }

    #[test]
    fn markowitz_factors_and_solves() {
        // Basis = permuted scaled identity plus some coupling.
        let cols = vec![
            vec![(2usize, 2.0)],
            vec![(0usize, -1.0), (1usize, 3.0)],
            vec![(0usize, 4.0)],
            vec![(1usize, 1.0), (3usize, 5.0)],
        ];
        let a = CscMatrix::from_cols(4, &cols);
        let basis = [0usize, 1, 2, 3];
        let lu = SparseLu::factor_basis(&a, &basis).unwrap();
        // Solve against a dense reference of the same matrix.
        let mut dm = DenseMatrix::zeros(4);
        for (p, &j) in basis.iter().enumerate() {
            for (i, v) in a.col_iter(j) {
                dm.set(i, p, v);
            }
        }
        let b = vec![1.0, -2.0, 3.0, 0.5];
        let x = lu.solve(&b);
        let r = dm.mul_vec(&x);
        for (ri, bi) in r.iter().zip(&b) {
            assert!((ri - bi).abs() < 1e-12, "{ri} vs {bi}");
        }
        // btran solves the transposed system.
        let mut y = b.clone();
        let mut scratch = Vec::new();
        lu.btran_in_place(&mut y, &mut scratch);
        for p in 0..4 {
            let mut acc = 0.0;
            for (i, v) in a.col_iter(basis[p]) {
                acc += v * y[i];
            }
            assert!((acc - b[p]).abs() < 1e-12);
        }
    }

    #[test]
    fn markowitz_reports_singular() {
        let cols = vec![vec![(0usize, 1.0)], vec![(0usize, 2.0)]];
        let a = CscMatrix::from_cols(2, &cols);
        assert_eq!(
            SparseLu::factor_basis(&a, &[0, 1]).unwrap_err(),
            LinSysError::Singular
        );
    }

    #[test]
    fn eta_updates_track_basis_changes() {
        // Start from B = I (2x2), replace column 1 with [1, 2]^T via an
        // eta, and check ftran/btran against the explicit new inverse.
        let cols = vec![vec![(0usize, 1.0)], vec![(1usize, 1.0)]];
        let a = CscMatrix::from_cols(2, &cols);
        let lu = SparseLu::factor_basis(&a, &[0, 1]).unwrap();
        let mut eng = BasisEngine::new(lu);
        let mut scratch = Vec::new();
        // d = B^{-1} [1, 2]^T = [1, 2]^T.
        eng.push_eta(1, &[1.0, 2.0]);
        // New B = [[1, 1], [0, 2]]; B^{-1} = [[1, -0.5], [0, 0.5]].
        let mut x = vec![3.0, 4.0];
        eng.ftran(&mut x, &mut scratch);
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
        // btran: y = B^{-T} c.
        let mut y = vec![2.0, 2.0];
        eng.btran(&mut y, &mut scratch);
        assert!((y[0] - 2.0).abs() < 1e-12);
        assert!((y[1] - 0.0).abs() < 1e-12);
    }

    #[test]
    fn border_extension_matches_block_inverse() {
        // Core B = diag(2, 4); border appends one row with C = [1, 1]
        // (positions 0 and 1) and d = -1.
        let cols = vec![vec![(0usize, 2.0)], vec![(1usize, 4.0)]];
        let a = CscMatrix::from_cols(2, &cols);
        let lu = SparseLu::factor_basis(&a, &[0, 1]).unwrap();
        let mut eng = BasisEngine::new(lu);
        eng.append_border(vec![(vec![(0u32, 1.0), (1u32, 1.0)], -1.0)]);
        assert_eq!(eng.dim(), 3);
        let mut scratch = Vec::new();
        // B_new = [[2,0,0],[0,4,0],[1,1,-1]]. Solve B_new x = [2, 4, 0]:
        // x = [1, 1, 2].
        let mut x = vec![2.0, 4.0, 0.0];
        eng.ftran(&mut x, &mut scratch);
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
        assert!((x[2] - 2.0).abs() < 1e-12);
        // B_new^T y = [0, 0, 1] -> y = [ 1/2 * ... ] check by residual.
        let mut y = vec![0.0, 0.0, 1.0];
        eng.btran(&mut y, &mut scratch);
        let bt = [[2.0, 0.0, 1.0], [0.0, 4.0, 1.0], [0.0, 0.0, -1.0]];
        let want = [0.0, 0.0, 1.0];
        for (row, w) in bt.iter().zip(want) {
            let acc: f64 = row.iter().zip(&y).map(|(a, b)| a * b).sum();
            assert!((acc - w).abs() < 1e-12, "{acc} vs {w}");
        }
    }
}
