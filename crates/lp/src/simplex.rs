//! Bounded-variable revised primal simplex.
//!
//! The solver standardizes a model from [`crate::model::LpProblem`] to
//!
//! ```text
//! minimize c'x   subject to   A x - s = 0,   l <= (x, s) <= u
//! ```
//!
//! with one slack `s_i` per row carrying the row's activity bounds, so the
//! right-hand side is identically zero. Phase 1 adds one artificial column
//! per row to construct an initial basis and minimizes the sum of
//! artificials; phase 2 minimizes the true objective with artificials fixed
//! at zero.
//!
//! Implementation notes:
//! * the constraint matrix is stored once in compressed sparse column form
//!   ([`crate::sparse::CscMatrix`]); pricing and ftran gather columns from
//!   it directly;
//! * the basis is represented by [`EngineKind`]: the default sparse engine
//!   keeps a Markowitz-ordered LU factorization plus a product-form eta
//!   file ([`crate::slu::BasisEngine`]), refactorized every
//!   [`SimplexOptions::reinvert_every`] pivots or earlier when the eta file
//!   outgrows the factors; the dense engine keeps the explicit row-major
//!   inverse of the pre-sparse solver and remains selectable for A/B
//!   comparisons;
//! * the entering rule is devex pricing over a candidate list by default
//!   ([`Pricing::Devex`]), with classic Dantzig pricing selectable and a
//!   fall back to Bland's rule after a long run of degenerate pivots to
//!   guarantee termination — optimality is only ever declared from a full
//!   pricing scan;
//! * a presolve pass ([`crate::presolve`]) runs before one-shot solves and
//!   its postsolve restores the original variable/dual space; warm-started
//!   solves through [`crate::incremental`] bypass presolve so the retained
//!   basis maps 1:1 onto the model's rows;
//! * geometric row/column equilibration is applied by default, which keeps
//!   the WAN models (capacities 0.5–10, demands spanning decades) well
//!   conditioned.

use crate::float::nonzero;
use crate::model::{LpProblem, Sense, Solution, Status};
use crate::slu::{BasisEngine, SparseLu};
use crate::sparse::CscMatrix;

/// Entering-variable pricing rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pricing {
    /// Most-negative reduced cost, full scan every iteration.
    Dantzig,
    /// Devex reference weights over a candidate list (default).
    Devex,
}

/// Basis representation backing ftran/btran.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// Explicit dense `B^{-1}` updated by the product form (the pre-sparse
    /// engine, kept for A/B comparison).
    Dense,
    /// Sparse LU with an eta file (default).
    Sparse,
}

/// Tunable solver parameters.
#[derive(Debug, Clone)]
pub struct SimplexOptions {
    /// Feasibility / bound tolerance.
    pub tol: f64,
    /// Reduced-cost optimality tolerance.
    pub opt_tol: f64,
    /// Minimum acceptable pivot magnitude.
    pub pivot_tol: f64,
    /// Hard cap on total simplex iterations; `None` chooses
    /// `20_000 + 100 * (rows + vars)`.
    pub max_iterations: Option<usize>,
    /// Refactorize the basis from scratch this often (the sparse engine may
    /// refactorize earlier if its eta file outgrows the factors).
    pub reinvert_every: usize,
    /// Consecutive degenerate pivots before switching to Bland's rule.
    pub bland_after: usize,
    /// Apply geometric row/column scaling before solving.
    pub scale: bool,
    /// Entering-variable pricing rule.
    pub pricing: Pricing,
    /// Basis engine.
    pub engine: EngineKind,
    /// Run presolve/postsolve around one-shot solves (warm-started solves
    /// always bypass it).
    pub presolve: bool,
}

impl Default for SimplexOptions {
    fn default() -> Self {
        SimplexOptions {
            tol: 1e-7,
            opt_tol: 1e-7,
            pivot_tol: 1e-8,
            max_iterations: None,
            reinvert_every: 400,
            bland_after: 2000,
            scale: true,
            pricing: Pricing::Devex,
            engine: EngineKind::Sparse,
            presolve: true,
        }
    }
}

/// Where a column currently sits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum VarState {
    Basic(usize), // row index in the basis
    AtLower,
    AtUpper,
    /// Free variable currently resting at zero.
    FreeZero,
}

/// The basis representation: see [`EngineKind`].
pub(crate) enum Basis {
    Dense {
        /// m x m row-major explicit inverse.
        binv: Vec<f64>,
    },
    Sparse {
        engine: BasisEngine,
    },
}

/// Devex candidate-list length after a full pricing scan.
const DEVEX_CANDIDATES: usize = 64;
/// Devex reference-weight ceiling; beyond it all weights reset to 1.
const DEVEX_WEIGHT_RESET: f64 = 1e8;

/// The standardized problem plus solver workspace.
///
/// Kept `pub(crate)` so [`crate::incremental`] can retain it across solves
/// and extend it in place when rows are appended.
pub(crate) struct Tableau {
    pub(crate) m: usize,     // rows
    pub(crate) ncols: usize, // structural + slack + artificial columns
    /// Sparse columns of [A | -I | +-I].
    pub(crate) a: CscMatrix,
    pub(crate) lower: Vec<f64>,
    pub(crate) upper: Vec<f64>,
    pub(crate) cost: Vec<f64>, // phase-2 cost
    pub(crate) state: Vec<VarState>,
    pub(crate) basis: Vec<usize>, // column index basic in each row
    pub(crate) rep: Basis,
    pub(crate) xb: Vec<f64>, // values of basic variables per row
    /// Row equilibration factors (extended per appended row), needed to
    /// unscale duals.
    pub(crate) rscale: Vec<f64>,
    pub(crate) opts: SimplexOptions,
    pub(crate) iterations: usize,
}

impl Tableau {
    /// Current value of any column: bound value if nonbasic, `xb` if basic.
    #[inline]
    pub(crate) fn value(&self, j: usize) -> f64 {
        self.nonbasic_value(j)
    }

    #[inline]
    fn nonbasic_value(&self, j: usize) -> f64 {
        match self.state[j] {
            VarState::AtLower => self.lower[j],
            VarState::AtUpper => self.upper[j],
            VarState::FreeZero => 0.0,
            VarState::Basic(r) => self.xb[r],
        }
    }

    /// x_B = -B^{-1} * sum_j nonbasic A_j x_j  (rhs is zero).
    pub(crate) fn recompute_basics(&mut self) {
        let m = self.m;
        let mut rhs = vec![0.0; m];
        for j in 0..self.ncols {
            if matches!(self.state[j], VarState::Basic(_)) {
                continue;
            }
            let v = self.nonbasic_value(j);
            if nonzero(v) {
                for (i, a) in self.a.col_iter(j) {
                    rhs[i] -= a * v;
                }
            }
        }
        // xb = B^{-1} rhs
        match &self.rep {
            Basis::Dense { binv } => {
                for r in 0..m {
                    let row = &binv[r * m..(r + 1) * m];
                    let mut acc = 0.0;
                    for i in 0..m {
                        acc += row[i] * rhs[i];
                    }
                    self.xb[r] = acc;
                }
            }
            Basis::Sparse { engine } => {
                let mut scratch = Vec::new();
                self.xb.copy_from_slice(&rhs);
                engine.ftran(&mut self.xb, &mut scratch);
            }
        }
    }

    /// Rebuilds the basis representation from the current basis columns.
    /// Returns false if the basis matrix is numerically singular.
    pub(crate) fn reinvert(&mut self) -> bool {
        let m = self.m;
        match &mut self.rep {
            Basis::Sparse { engine } => match SparseLu::factor_basis(&self.a, &self.basis) {
                Ok(lu) => {
                    *engine = BasisEngine::new(lu);
                    true
                }
                Err(_) => false,
            },
            Basis::Dense { binv } => {
                // Dense B (row-major) from basis columns.
                let mut b = vec![0.0; m * m];
                for (r, &j) in self.basis.iter().enumerate() {
                    for (i, a) in self.a.col_iter(j) {
                        b[i * m + r] = a;
                    }
                }
                let mut inv = vec![0.0; m * m];
                for i in 0..m {
                    inv[i * m + i] = 1.0;
                }
                // Gauss-Jordan with partial pivoting.
                for col in 0..m {
                    let mut piv = col;
                    let mut best = b[col * m + col].abs();
                    for r in (col + 1)..m {
                        let v = b[r * m + col].abs();
                        if v > best {
                            best = v;
                            piv = r;
                        }
                    }
                    if best < 1e-12 {
                        return false;
                    }
                    if piv != col {
                        for k in 0..m {
                            b.swap(col * m + k, piv * m + k);
                            inv.swap(col * m + k, piv * m + k);
                        }
                    }
                    let d = b[col * m + col];
                    let dinv = 1.0 / d;
                    for k in 0..m {
                        b[col * m + k] *= dinv;
                        inv[col * m + k] *= dinv;
                    }
                    for r in 0..m {
                        if r == col {
                            continue;
                        }
                        let f = b[r * m + col];
                        if nonzero(f) {
                            for k in 0..m {
                                b[r * m + k] -= f * b[col * m + k];
                                inv[r * m + k] -= f * inv[col * m + k];
                            }
                        }
                    }
                }
                *binv = inv;
                true
            }
        }
    }

    /// Whether the sparse engine's eta file has outgrown its factors.
    fn rep_wants_refactor(&self) -> bool {
        match &self.rep {
            Basis::Dense { .. } => false,
            Basis::Sparse { engine } => engine.wants_refactor(),
        }
    }

    /// y' = c_B' B^{-1} for the given basic costs.
    pub(crate) fn btran(&self, cb: &[f64], y: &mut [f64], scratch: &mut Vec<f64>) {
        let m = self.m;
        match &self.rep {
            Basis::Dense { binv } => {
                for v in y.iter_mut() {
                    *v = 0.0;
                }
                for (r, &c) in cb.iter().enumerate() {
                    if nonzero(c) {
                        let row = &binv[r * m..(r + 1) * m];
                        for i in 0..m {
                            y[i] += c * row[i];
                        }
                    }
                }
            }
            Basis::Sparse { engine } => {
                y.copy_from_slice(cb);
                engine.btran(y, scratch);
            }
        }
    }

    /// d = B^{-1} A_j.
    fn ftran(&self, j: usize, d: &mut [f64], scratch: &mut Vec<f64>) {
        let m = self.m;
        match &self.rep {
            Basis::Dense { binv } => {
                for v in d.iter_mut() {
                    *v = 0.0;
                }
                for (i, a) in self.a.col_iter(j) {
                    if nonzero(a) {
                        for (r, dr) in d.iter_mut().enumerate().take(m) {
                            *dr += binv[r * m + i] * a;
                        }
                    }
                }
            }
            Basis::Sparse { engine } => {
                for v in d.iter_mut() {
                    *v = 0.0;
                }
                self.a.gather_col(j, d);
                engine.ftran(d, scratch);
            }
        }
    }

    /// Row `r` of `B^{-1}` (i.e. `e_r' B^{-1}`), used by the devex weight
    /// update.
    fn pivot_row(&self, r: usize, scratch: &mut Vec<f64>) -> Vec<f64> {
        match &self.rep {
            Basis::Dense { binv } => binv[r * self.m..(r + 1) * self.m].to_vec(),
            Basis::Sparse { engine } => {
                let mut z = vec![0.0; self.m];
                z[r] = 1.0;
                engine.btran(&mut z, scratch);
                z
            }
        }
    }

    /// Updates the basis representation after column `enter` replaces the
    /// basic variable in row `r`, with pivot column `d = B^{-1} A_enter`:
    /// product-form update of the dense inverse, or an eta record for the
    /// sparse engine.
    fn update_rep(&mut self, r: usize, d: &[f64]) {
        match &mut self.rep {
            Basis::Dense { binv } => update_binv_dense(binv, self.m, r, d),
            Basis::Sparse { engine } => engine.push_eta(r, d),
        }
    }

    /// Reduced cost, step direction, and dual violation of nonbasic column
    /// `j`; `None` for basic or fixed columns.
    #[inline]
    fn price_one(&self, j: usize, cost: &[f64], y: &[f64]) -> Option<(f64, f64, f64)> {
        let st = self.state[j];
        if matches!(st, VarState::Basic(_)) {
            return None;
        }
        if self.upper[j] - self.lower[j] <= 0.0 {
            return None; // fixed
        }
        let rc = cost[j] - self.a.col_dot(j, y);
        let (viol, dir) = match st {
            VarState::AtLower => (-rc, 1.0),
            VarState::AtUpper => (rc, -1.0),
            VarState::FreeZero => {
                if rc < 0.0 {
                    (-rc, 1.0)
                } else {
                    (rc, -1.0)
                }
            }
            // audit:allow(no-panic-paths, pricing scans only nonbasic columns; Basic is filtered above) audit:allow(panic-reachability, same invariant: Basic columns are filtered before pricing)
            VarState::Basic(_) => unreachable!(),
        };
        Some((rc, dir, viol))
    }

    /// Bland's rule: the first column violating dual feasibility.
    fn price_first_violation(&self, cost: &[f64], y: &[f64]) -> Option<(usize, f64, f64)> {
        for j in 0..self.ncols {
            if let Some((rc, dir, viol)) = self.price_one(j, cost, y) {
                if viol > self.opts.opt_tol {
                    return Some((j, rc, dir));
                }
            }
        }
        None
    }

    /// Dantzig pricing: largest dual violation, first column on ties.
    fn price_dantzig(&self, cost: &[f64], y: &[f64]) -> Option<(usize, f64, f64)> {
        let mut enter: Option<(usize, f64, f64)> = None;
        for j in 0..self.ncols {
            let Some((_rc, dir, viol)) = self.price_one(j, cost, y) else {
                continue;
            };
            if viol > self.opts.opt_tol {
                match enter {
                    Some((_, brc, _)) if viol <= brc.abs() => {}
                    _ => enter = Some((j, if dir > 0.0 { -viol } else { viol }, dir)),
                }
            }
        }
        enter
    }

    /// Devex pricing over the candidate list, falling back to a full scan
    /// (which also rebuilds the list). Optimality is only declared from a
    /// full scan.
    fn price_devex(
        &self,
        cost: &[f64],
        y: &[f64],
        weights: &[f64],
        cands: &mut Vec<usize>,
    ) -> Option<(usize, f64, f64)> {
        if !cands.is_empty() {
            let mut best: Option<(usize, f64, f64, f64)> = None;
            let mut alive = Vec::with_capacity(cands.len());
            for &j in cands.iter() {
                let Some((rc, dir, viol)) = self.price_one(j, cost, y) else {
                    continue;
                };
                if viol > self.opts.opt_tol {
                    alive.push(j);
                    let score = viol * viol / weights[j];
                    if best.is_none_or(|(.., bs)| score > bs) {
                        best = Some((j, rc, dir, score));
                    }
                }
            }
            *cands = alive;
            if let Some((j, rc, dir, _)) = best {
                return Some((j, rc, dir));
            }
        }
        // Full scan; rebuild the candidate list from the top scorers.
        let mut viols: Vec<(usize, f64, f64, f64)> = Vec::new();
        for (j, &w) in weights.iter().enumerate().take(self.ncols) {
            let Some((rc, dir, viol)) = self.price_one(j, cost, y) else {
                continue;
            };
            if viol > self.opts.opt_tol {
                viols.push((j, rc, dir, viol * viol / w));
            }
        }
        if viols.is_empty() {
            return None;
        }
        viols.sort_by(|a, b| b.3.total_cmp(&a.3).then(a.0.cmp(&b.0)));
        viols.truncate(DEVEX_CANDIDATES);
        *cands = viols.iter().map(|&(j, ..)| j).collect();
        let (j, rc, dir, _) = viols[0];
        Some((j, rc, dir))
    }

    /// Devex reference-weight update after a pivot: `alpha_j` is row `r` of
    /// `B^{-1} A` restricted to the candidate list (the only columns whose
    /// weights are ever read before the next full scan refreshes the list).
    #[allow(clippy::too_many_arguments)]
    fn update_devex_weights(
        &self,
        weights: &mut [f64],
        cands: &[usize],
        jin: usize,
        jout: usize,
        r: usize,
        d: &[f64],
        scratch: &mut Vec<f64>,
    ) {
        let alpha_q = d[r];
        if alpha_q.abs() <= self.opts.pivot_tol {
            return;
        }
        let wq = weights[jin].max(1.0);
        let z = self.pivot_row(r, scratch);
        for &j in cands {
            if j == jin {
                continue;
            }
            let alpha = self.a.col_dot(j, &z);
            let ratio = alpha / alpha_q;
            let cand = ratio * ratio * wq;
            if cand > weights[j] {
                weights[j] = cand;
            }
        }
        let wref = (wq / (alpha_q * alpha_q)).max(1.0);
        weights[jout] = wref;
        if wref > DEVEX_WEIGHT_RESET {
            for w in weights.iter_mut() {
                *w = 1.0;
            }
        }
    }

    /// One simplex phase: minimize `cost` (already loaded per column) from
    /// the current basis. Returns the terminal status of the phase.
    pub(crate) fn optimize(&mut self, cost: &[f64], max_iter: usize) -> Status {
        let m = self.m;
        let mut y = vec![0.0; m];
        let mut d = vec![0.0; m];
        let mut cb: Vec<f64> = vec![0.0; m];
        let mut scratch: Vec<f64> = Vec::new();
        let mut degenerate_run = 0usize;
        let mut since_reinvert = 0usize;
        let devex = matches!(self.opts.pricing, Pricing::Devex);
        let mut weights: Vec<f64> = if devex {
            vec![1.0; self.ncols]
        } else {
            Vec::new()
        };
        let mut cands: Vec<usize> = Vec::new();

        loop {
            if self.iterations >= max_iter {
                return Status::IterationLimit;
            }

            for (r, c) in cb.iter_mut().enumerate().take(m) {
                *c = cost[self.basis[r]];
            }
            self.btran(&cb, &mut y, &mut scratch);

            // Pricing: pick entering column.
            let use_bland = degenerate_run >= self.opts.bland_after;
            let enter = if use_bland {
                self.price_first_violation(cost, &y)
            } else if devex {
                self.price_devex(cost, &y, &weights, &mut cands)
            } else {
                self.price_dantzig(cost, &y)
            };
            let Some((jin, _rc, dir)) = enter else {
                return Status::Optimal;
            };

            self.ftran(jin, &mut d, &mut scratch);

            // Ratio test: entering moves by t >= 0 in direction `dir`;
            // basic values change by -dir * t * d.
            let range = self.upper[jin] - self.lower[jin];
            let mut t_max = range; // bound flip distance (may be inf)
            let mut leave: Option<(usize, bool)> = None; // (row, leaves_at_upper)
            for r in 0..m {
                let delta = -dir * d[r]; // d(x_B[r]) / dt
                if delta.abs() <= self.opts.pivot_tol {
                    continue;
                }
                let xv = self.xb[r];
                let jb = self.basis[r];
                let (lim, at_upper) = if delta > 0.0 {
                    (self.upper[jb], true)
                } else {
                    (self.lower[jb], false)
                };
                if lim.is_infinite() {
                    continue;
                }
                // Allow slight infeasibility to be absorbed (ratio 0 floor).
                let mut t = (lim - xv) / delta;
                if t < 0.0 {
                    t = 0.0;
                }
                let better = match leave {
                    None => t < t_max - 1e-12,
                    Some((br, _)) => {
                        t < t_max - 1e-12 || (t <= t_max + 1e-12 && d[r].abs() > d[br].abs())
                    }
                };
                if better {
                    t_max = t;
                    leave = Some((r, at_upper));
                }
            }

            if t_max.is_infinite() {
                return Status::Unbounded;
            }

            self.iterations += 1;
            since_reinvert += 1;
            if t_max <= 1e-10 {
                degenerate_run += 1;
            } else {
                degenerate_run = 0;
            }

            match leave {
                None => {
                    // Bound flip: entering runs across its whole range.
                    let t = t_max;
                    for (r, &dr) in d.iter().enumerate().take(m) {
                        self.xb[r] += -dir * t * dr;
                    }
                    self.state[jin] = match self.state[jin] {
                        VarState::AtLower => VarState::AtUpper,
                        VarState::AtUpper => VarState::AtLower,
                        s => s, // free variables cannot bound-flip (range inf)
                    };
                }
                Some((r, at_upper)) => {
                    let t = t_max;
                    // New value of entering variable.
                    let xin = match self.state[jin] {
                        VarState::AtLower => self.lower[jin] + t,
                        VarState::AtUpper => self.upper[jin] - t,
                        VarState::FreeZero => dir * t,
                        // audit:allow(no-panic-paths, the entering column is nonbasic by construction) audit:allow(panic-reachability, same invariant: the entering column is nonbasic)
                        VarState::Basic(_) => unreachable!(),
                    };
                    let jout = self.basis[r];
                    if devex {
                        self.update_devex_weights(
                            &mut weights,
                            &cands,
                            jin,
                            jout,
                            r,
                            &d,
                            &mut scratch,
                        );
                    }
                    for (i, &di) in d.iter().enumerate().take(m) {
                        self.xb[i] += -dir * t * di;
                    }
                    self.state[jout] = if at_upper {
                        VarState::AtUpper
                    } else {
                        VarState::AtLower
                    };
                    // Snap the leaving variable exactly onto its bound.
                    self.basis[r] = jin;
                    self.state[jin] = VarState::Basic(r);
                    self.xb[r] = xin;
                    self.update_rep(r, &d);

                    if since_reinvert >= self.opts.reinvert_every || self.rep_wants_refactor() {
                        since_reinvert = 0;
                        if !self.reinvert() {
                            // Singular after drift: rebuild conservatively.
                            return Status::IterationLimit;
                        }
                        self.recompute_basics();
                    }
                }
            }
        }
    }

    /// Sum of bound violations over basic variables.
    pub(crate) fn primal_infeasibility(&self) -> f64 {
        let mut s = 0.0;
        for r in 0..self.m {
            let j = self.basis[r];
            let v = self.xb[r];
            if v < self.lower[j] {
                s += self.lower[j] - v;
            } else if v > self.upper[j] {
                s += v - self.upper[j];
            }
        }
        s
    }
}

/// Product-form update of a dense `B^{-1}` after a pivot in row `r` with
/// pivot column `d`.
fn update_binv_dense(binv: &mut [f64], m: usize, r: usize, d: &[f64]) {
    let piv = d[r];
    let pinv = 1.0 / piv;
    // Scale pivot row.
    for k in 0..m {
        binv[r * m + k] *= pinv;
    }
    for row in 0..m {
        if row == r {
            continue;
        }
        let f = d[row];
        if nonzero(f) {
            // binv[row, :] -= f * binv[r, :]
            let (head, tail) = binv.split_at_mut(r.max(row) * m);
            let (dst, src) = if row < r {
                (&mut head[row * m..row * m + m], &tail[..m])
            } else {
                (&mut tail[..m], &head[r * m..r * m + m])
            };
            for k in 0..m {
                dst[k] -= f * src[k];
            }
        }
    }
}

/// Geometric equilibration factors for rows and structural columns.
fn scaling(problem: &LpProblem) -> (Vec<f64>, Vec<f64>) {
    let m = problem.rows.len();
    let n = problem.num_vars();
    let mut rscale = vec![1.0f64; m];
    let mut cscale = vec![1.0f64; n];
    for _pass in 0..2 {
        for (i, row) in problem.rows.iter().enumerate() {
            let mut mx: f64 = 0.0;
            let mut mn = f64::INFINITY;
            for &(j, a) in &row.coeffs {
                let v = (a * rscale[i] * cscale[j]).abs();
                if v > 0.0 {
                    mx = mx.max(v);
                    mn = mn.min(v);
                }
            }
            if mx > 0.0 {
                rscale[i] /= (mx * mn).sqrt();
            }
        }
        let mut cmax = vec![0.0f64; n];
        let mut cmin = vec![f64::INFINITY; n];
        for (i, row) in problem.rows.iter().enumerate() {
            for &(j, a) in &row.coeffs {
                let v = (a * rscale[i] * cscale[j]).abs();
                if v > 0.0 {
                    cmax[j] = cmax[j].max(v);
                    cmin[j] = cmin[j].min(v);
                }
            }
        }
        for j in 0..n {
            if cmax[j] > 0.0 {
                cscale[j] /= (cmax[j] * cmin[j]).sqrt();
            }
        }
    }
    (rscale, cscale)
}

/// Equilibration factor for a single appended row, consistent with the
/// column scales already fixed by the initial solve.
pub(crate) fn row_scale(coeffs: &[(usize, f64)], cscale: &[f64]) -> f64 {
    let mut mx: f64 = 0.0;
    let mut mn = f64::INFINITY;
    for &(j, a) in coeffs {
        let v = (a * cscale[j]).abs();
        if v > 0.0 {
            mx = mx.max(v);
            mn = mn.min(v);
        }
    }
    if mx > 0.0 {
        1.0 / (mx * mn).sqrt()
    } else {
        1.0
    }
}

/// Solver workspace retained after a successful solve so follow-up solves
/// (with appended rows) can warm-start from the optimal basis.
pub(crate) struct SolverState {
    pub(crate) tab: Tableau,
    /// Structural variable count at solve time.
    pub(crate) n: usize,
    /// Column equilibration factors, fixed for the lifetime of the state.
    pub(crate) cscale: Vec<f64>,
}

/// Reads the structural solution out of a terminal tableau and applies the
/// same status demotion as the cold path: an "optimal" basis that violates
/// bounds by more than 1e-5 is reported as [`Status::IterationLimit`].
///
/// At optimality the row duals are recovered by one btran of the basic
/// phase-2 costs, unscaled back to the original row space (`y_i =
/// sign · rscale_i · ỹ_i`, with `sign` flipping for maximization so the
/// reported dual is always d(objective)/d(rhs_i) in the model's own sense).
pub(crate) fn extract(
    tab: &Tableau,
    problem: &LpProblem,
    n: usize,
    cscale: &[f64],
    phase2_status: Status,
) -> Solution {
    let mut x = vec![0.0; n];
    for (j, xj) in x.iter_mut().enumerate() {
        *xj = tab.value(j) * cscale[j];
        // Clamp tiny bound violations from round-off.
        if *xj < problem.lower[j] {
            *xj = problem.lower[j];
        }
        if *xj > problem.upper[j] {
            *xj = problem.upper[j];
        }
    }
    let objective: f64 = x
        .iter()
        .zip(problem.obj.iter())
        .map(|(xi, ci)| xi * ci)
        .sum();
    let status = match phase2_status {
        Status::Optimal => {
            if tab.primal_infeasibility() > 1e-5 {
                // Numerical trouble; report as iteration limit rather than
                // returning a wrong "optimal".
                Status::IterationLimit
            } else {
                Status::Optimal
            }
        }
        s => s,
    };
    let mut duals = vec![0.0; problem.rows.len()];
    if status == Status::Optimal && problem.rows.len() == tab.m {
        let sign = match problem.sense {
            Sense::Maximize => -1.0,
            Sense::Minimize => 1.0,
        };
        let mut cb = vec![0.0; tab.m];
        for (r, c) in cb.iter_mut().enumerate() {
            *c = tab.cost[tab.basis[r]];
        }
        let mut y = vec![0.0; tab.m];
        let mut scratch = Vec::new();
        tab.btran(&cb, &mut y, &mut scratch);
        for (i, dy) in duals.iter_mut().enumerate() {
            *dy = sign * tab.rscale[i] * y[i];
        }
    }
    Solution {
        status,
        objective,
        x,
        duals,
        iterations: tab.iterations,
    }
}

/// Solves `problem`; see module docs for the algorithm. One-shot solves run
/// presolve/postsolve when [`SimplexOptions::presolve`] is set.
pub(crate) fn solve(problem: &LpProblem, opts: &SimplexOptions) -> Solution {
    if opts.presolve {
        match crate::presolve::presolve(problem, opts) {
            crate::presolve::Presolved::Decided(sol) => sol,
            crate::presolve::Presolved::Reduced(red) => {
                let (sol, _) = solve_with_state(&red.reduced, opts);
                red.postsolve(problem, sol)
            }
        }
    } else {
        solve_with_state(problem, opts).0
    }
}

/// Like [`solve`], but additionally returns the terminal solver workspace
/// when the solve ran to completion, for use by [`crate::incremental`].
/// Never presolves: the retained basis must map 1:1 onto the model's rows
/// and columns so appended cutting planes can reference them.
pub(crate) fn solve_with_state(
    problem: &LpProblem,
    opts: &SimplexOptions,
) -> (Solution, Option<SolverState>) {
    let m = problem.rows.len();
    let n = problem.num_vars();

    let (rscale, cscale) = if opts.scale {
        scaling(problem)
    } else {
        (vec![1.0; m], vec![1.0; n])
    };

    // Columns 0..n structural, n..n+m slacks, n+m..n+2m artificials.
    let nslack = n + m;
    let ncols = n + 2 * m;

    let mut cols: Vec<Vec<(usize, f64)>> = vec![Vec::new(); nslack];
    for (i, row) in problem.rows.iter().enumerate() {
        for &(j, a) in &row.coeffs {
            cols[j].push((i, a * rscale[i] * cscale[j]));
        }
        cols[nslack - m + i].push((i, -1.0));
    }
    let mut a = CscMatrix::from_cols(m, &cols);
    drop(cols);

    let mut lower = vec![0.0; ncols];
    let mut upper = vec![0.0; ncols];
    let mut cost = vec![0.0; ncols];
    let sign = match problem.sense {
        Sense::Maximize => -1.0,
        Sense::Minimize => 1.0,
    };
    for j in 0..n {
        // x = cscale * x'
        lower[j] = problem.lower[j] / cscale[j];
        upper[j] = problem.upper[j] / cscale[j];
        cost[j] = sign * problem.obj[j] * cscale[j];
    }
    for i in 0..m {
        lower[n + i] = problem.rows[i].lower * rscale[i];
        upper[n + i] = problem.rows[i].upper * rscale[i];
    }
    // Artificial bounds are set per-row below.

    // Initial nonbasic placement for structural vars and slacks.
    let mut state = vec![VarState::AtLower; ncols];
    for j in 0..nslack {
        state[j] = if lower[j].is_finite() {
            VarState::AtLower
        } else if upper[j].is_finite() {
            VarState::AtUpper
        } else {
            VarState::FreeZero
        };
    }
    // Row residuals r_i = sum_j A_ij x_j - s_i with chosen nonbasic values.
    let mut resid = vec![0.0; m];
    for j in 0..nslack {
        let v = match state[j] {
            VarState::AtLower => lower[j],
            VarState::AtUpper => upper[j],
            _ => 0.0,
        };
        if nonzero(v) {
            for (i, av) in a.col_iter(j) {
                resid[i] += av * v;
            }
        }
    }
    // Artificial i has coefficient matching -resid so its value is |resid|.
    let mut basis = Vec::with_capacity(m);
    let mut phase1_cost = vec![0.0; ncols];
    for (i, &ri) in resid.iter().enumerate().take(m) {
        let acol = n + m + i;
        let s = if ri >= 0.0 { -1.0 } else { 1.0 };
        let pushed = a.push_col([(i, s)]);
        debug_assert_eq!(pushed, acol);
        lower[acol] = 0.0;
        upper[acol] = f64::INFINITY;
        phase1_cost[acol] = 1.0;
        state[acol] = VarState::Basic(i);
        basis.push(acol);
    }

    // Initial basis of artificials: B = diag(sign), B^{-1} = diag(sign).
    let rep = match opts.engine {
        EngineKind::Dense => {
            let mut binv = vec![0.0; m * m];
            for (i, &ri) in resid.iter().enumerate().take(m) {
                let s = if ri >= 0.0 { -1.0 } else { 1.0 };
                binv[i * m + i] = s;
            }
            Basis::Dense { binv }
        }
        EngineKind::Sparse => match SparseLu::factor_basis(&a, &basis) {
            Ok(lu) => Basis::Sparse {
                engine: BasisEngine::new(lu),
            },
            Err(_) => {
                // A diagonal +-1 basis cannot be singular; report failure
                // conservatively instead of panicking.
                let sol = Solution {
                    status: Status::IterationLimit,
                    objective: f64::NAN,
                    x: vec![0.0; n],
                    duals: vec![0.0; m],
                    iterations: 0,
                };
                return (sol, None);
            }
        },
    };

    let mut tab = Tableau {
        m,
        ncols,
        a,
        lower,
        upper,
        cost,
        state,
        basis,
        rep,
        xb: vec![0.0; m],
        rscale,
        opts: opts.clone(),
        iterations: 0,
    };
    for (i, &ri) in resid.iter().enumerate().take(m) {
        tab.xb[i] = ri.abs();
    }

    let max_iter = opts.max_iterations.unwrap_or(20_000 + 100 * (m + n));

    // ---- Phase 1 ----
    let p1cost = phase1_cost.clone();
    let status1 = tab.optimize(&p1cost, max_iter);
    let art_sum: f64 = (0..m)
        .map(|i| {
            let j = tab.basis[i];
            if j >= n + m {
                tab.xb[i].max(0.0)
            } else {
                0.0
            }
        })
        .sum();
    if status1 == Status::IterationLimit {
        let sol = Solution {
            status: Status::IterationLimit,
            objective: f64::NAN,
            x: vec![0.0; n],
            duals: vec![0.0; m],
            iterations: tab.iterations,
        };
        return (sol, None);
    }
    if art_sum > opts.tol.max(1e-6) {
        let sol = Solution {
            status: Status::Infeasible,
            objective: f64::NAN,
            x: vec![0.0; n],
            duals: vec![0.0; m],
            iterations: tab.iterations,
        };
        return (sol, None);
    }
    // Fix artificials at zero for phase 2.
    for i in 0..m {
        let acol = n + m + i;
        tab.upper[acol] = 0.0;
        if !matches!(tab.state[acol], VarState::Basic(_)) {
            tab.state[acol] = VarState::AtLower;
        }
    }

    // ---- Phase 2 ----
    let p2cost = tab.cost.clone();
    let status2 = tab.optimize(&p2cost, max_iter);

    let sol = extract(&tab, problem, n, &cscale, status2);
    let state = if sol.status == Status::Optimal {
        Some(SolverState { tab, n, cscale })
    } else {
        None
    };
    (sol, state)
}

#[cfg(test)]
mod tests {
    use super::{EngineKind, Pricing, SimplexOptions};
    use crate::model::{LpProblem, Sense, Status};

    fn assert_close(a: f64, b: f64) {
        assert!(
            (a - b).abs() <= 1e-6 * (1.0 + b.abs()),
            "expected {b}, got {a}"
        );
    }

    #[test]
    fn simple_max() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  -> 36 at (2, 6)
        let mut lp = LpProblem::new(Sense::Maximize);
        let x = lp.add_nonneg(3.0);
        let y = lp.add_nonneg(5.0);
        lp.add_le(vec![(x, 1.0)], 4.0);
        lp.add_le(vec![(y, 2.0)], 12.0);
        lp.add_le(vec![(x, 3.0), (y, 2.0)], 18.0);
        let s = lp.solve().unwrap();
        assert_eq!(s.status, Status::Optimal);
        assert_close(s.objective, 36.0);
        assert_close(s.value(x), 2.0);
        assert_close(s.value(y), 6.0);
    }

    #[test]
    fn simple_min_with_ge_rows() {
        // min 2x + 3y s.t. x + y >= 10, x >= 2, y >= 3  -> x=7, y=3 -> 23
        let mut lp = LpProblem::new(Sense::Minimize);
        let x = lp.add_var(2.0, f64::INFINITY, 2.0);
        let y = lp.add_var(3.0, f64::INFINITY, 3.0);
        lp.add_ge(vec![(x, 1.0), (y, 1.0)], 10.0);
        let s = lp.solve().unwrap();
        assert_eq!(s.status, Status::Optimal);
        assert_close(s.objective, 23.0);
    }

    #[test]
    fn equality_rows() {
        // max x + y s.t. x + 2y == 4, x - y == 1 -> x=2, y=1 -> 3
        let mut lp = LpProblem::new(Sense::Maximize);
        let x = lp.add_nonneg(1.0);
        let y = lp.add_nonneg(1.0);
        lp.add_eq(vec![(x, 1.0), (y, 2.0)], 4.0);
        lp.add_eq(vec![(x, 1.0), (y, -1.0)], 1.0);
        let s = lp.solve().unwrap();
        assert_eq!(s.status, Status::Optimal);
        assert_close(s.value(x), 2.0);
        assert_close(s.value(y), 1.0);
    }

    #[test]
    fn upper_bounded_variables() {
        // max x + y, x <= 1.5, y <= 2, x + y <= 3 -> 3
        let mut lp = LpProblem::new(Sense::Maximize);
        let x = lp.add_var(0.0, 1.5, 1.0);
        let y = lp.add_var(0.0, 2.0, 1.0);
        lp.add_le(vec![(x, 1.0), (y, 1.0)], 3.0);
        let s = lp.solve().unwrap();
        assert_close(s.objective, 3.0);
    }

    #[test]
    fn bound_flip_only_problem() {
        // max x + 2y with x in [0,1], y in [0,1], no rows at all... rows
        // needed; add a vacuous one.
        let mut lp = LpProblem::new(Sense::Maximize);
        let x = lp.add_var(0.0, 1.0, 1.0);
        let y = lp.add_var(0.0, 1.0, 2.0);
        lp.add_le(vec![(x, 1.0), (y, 1.0)], 10.0);
        let s = lp.solve().unwrap();
        assert_close(s.objective, 3.0);
    }

    #[test]
    fn infeasible_detected() {
        let mut lp = LpProblem::new(Sense::Maximize);
        let x = lp.add_var(0.0, 1.0, 1.0);
        lp.add_ge(vec![(x, 1.0)], 2.0);
        let s = lp.solve().unwrap();
        assert_eq!(s.status, Status::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut lp = LpProblem::new(Sense::Maximize);
        let x = lp.add_nonneg(1.0);
        let y = lp.add_nonneg(0.0);
        lp.add_le(vec![(y, 1.0)], 5.0);
        let _ = x;
        let s = lp.solve().unwrap();
        assert_eq!(s.status, Status::Unbounded);
    }

    #[test]
    fn free_variable() {
        // min x s.t. x >= -5 via row (x free as a variable)
        let mut lp = LpProblem::new(Sense::Minimize);
        let x = lp.add_var(f64::NEG_INFINITY, f64::INFINITY, 1.0);
        lp.add_ge(vec![(x, 1.0)], -5.0);
        let s = lp.solve().unwrap();
        assert_eq!(s.status, Status::Optimal);
        assert_close(s.objective, -5.0);
    }

    #[test]
    fn negative_rhs_and_coefficients() {
        // min -x - y s.t. -x - y >= -4, x,y in [0,3] -> obj -4
        let mut lp = LpProblem::new(Sense::Minimize);
        let x = lp.add_var(0.0, 3.0, -1.0);
        let y = lp.add_var(0.0, 3.0, -1.0);
        lp.add_ge(vec![(x, -1.0), (y, -1.0)], -4.0);
        let s = lp.solve().unwrap();
        assert_close(s.objective, -4.0);
    }

    #[test]
    fn range_rows() {
        // max x s.t. 1 <= x + y <= 2, y in [0, 0.5] -> x = 2
        let mut lp = LpProblem::new(Sense::Maximize);
        let x = lp.add_nonneg(1.0);
        let y = lp.add_var(0.0, 0.5, 0.0);
        lp.add_row(vec![(x, 1.0), (y, 1.0)], 1.0, 2.0);
        let s = lp.solve().unwrap();
        assert_close(s.objective, 2.0);
    }

    #[test]
    fn duplicate_coefficients_are_summed() {
        let mut lp = LpProblem::new(Sense::Maximize);
        let x = lp.add_nonneg(1.0);
        lp.add_le(vec![(x, 1.0), (x, 1.0)], 4.0); // 2x <= 4
        let s = lp.solve().unwrap();
        assert_close(s.objective, 2.0);
    }

    #[test]
    fn degenerate_transportation_lp() {
        // Degenerate assignment-like LP; exercises tie-broken ratio tests.
        // min sum c_ij x_ij, rows: supplies = 1, demands = 1, 3x3, all c=1
        let mut lp = LpProblem::new(Sense::Minimize);
        let mut v = Vec::new();
        for _ in 0..9 {
            v.push(lp.add_nonneg(1.0));
        }
        for i in 0..3 {
            lp.add_eq((0..3).map(|j| (v[i * 3 + j], 1.0)), 1.0);
        }
        for j in 0..3 {
            lp.add_eq((0..3).map(|i| (v[i * 3 + j], 1.0)), 1.0);
        }
        let s = lp.solve().unwrap();
        assert_eq!(s.status, Status::Optimal);
        assert_close(s.objective, 3.0);
    }

    #[test]
    fn badly_scaled_problem() {
        // Coefficients spanning 1e-4 .. 1e4.
        let mut lp = LpProblem::new(Sense::Maximize);
        let x = lp.add_nonneg(1e4);
        let y = lp.add_nonneg(1e-3);
        lp.add_le(vec![(x, 1e4), (y, 1e-4)], 1e4);
        lp.add_le(vec![(x, 1.0), (y, 1.0)], 2.0);
        let s = lp.solve().unwrap();
        assert_eq!(s.status, Status::Optimal);
        // x=1 dominates: obj ~ 1e4 (y contributes negligibly via row 2).
        assert!(s.objective >= 1e4 - 1e-3);
    }

    #[test]
    fn maximize_vs_minimize_consistency() {
        let build = |sense| {
            let mut lp = LpProblem::new(sense);
            let x = lp.add_var(0.0, 2.0, 1.0);
            let y = lp.add_var(0.0, 2.0, -1.0);
            lp.add_le(vec![(x, 1.0), (y, 1.0)], 3.0);
            lp
        };
        let mx = build(Sense::Maximize).solve().unwrap();
        let mn = build(Sense::Minimize).solve().unwrap();
        assert_close(mx.objective, 2.0); // x=2, y=0
        assert_close(mn.objective, -2.0); // x=0, y=2
    }

    #[test]
    fn fixed_variables_respected() {
        let mut lp = LpProblem::new(Sense::Maximize);
        let x = lp.add_var(1.5, 1.5, 1.0);
        let y = lp.add_nonneg(1.0);
        lp.add_le(vec![(x, 1.0), (y, 1.0)], 4.0);
        let s = lp.solve().unwrap();
        assert_close(s.value(x), 1.5);
        assert_close(s.objective, 4.0);
    }

    #[test]
    fn empty_objective_feasibility_check() {
        let mut lp = LpProblem::new(Sense::Minimize);
        let x = lp.add_var(0.0, 1.0, 0.0);
        lp.add_ge(vec![(x, 1.0)], 0.5);
        let s = lp.solve().unwrap();
        assert_eq!(s.status, Status::Optimal);
        assert!(s.value(x) >= 0.5 - 1e-9);
    }

    #[test]
    fn max_flow_as_lp() {
        // Classic 4-node max flow: s->a (3), s->b (2), a->b (1), a->t (2),
        // b->t (3). Max flow = 5... check: s->a 3 (a->t 2, a->b 1), s->b 2,
        // b->t 3 -> total 5.
        let mut lp = LpProblem::new(Sense::Maximize);
        let sa = lp.add_var(0.0, 3.0, 0.0);
        let sb = lp.add_var(0.0, 2.0, 0.0);
        let ab = lp.add_var(0.0, 1.0, 0.0);
        let at = lp.add_var(0.0, 2.0, 0.0);
        let bt = lp.add_var(0.0, 3.0, 0.0);
        // objective: flow out of s
        lp.set_objective(sa, 1.0);
        lp.set_objective(sb, 1.0);
        // conservation at a and b
        lp.add_eq(vec![(sa, 1.0), (ab, -1.0), (at, -1.0)], 0.0);
        lp.add_eq(vec![(sb, 1.0), (ab, 1.0), (bt, -1.0)], 0.0);
        let s = lp.solve().unwrap();
        assert_close(s.objective, 5.0);
    }

    /// A moderately sized LP with a unique optimum, for cross-engine and
    /// cross-pricing comparisons.
    fn cross_check_lp() -> LpProblem {
        let mut lp = LpProblem::new(Sense::Minimize);
        let n = 12;
        let vars: Vec<_> = (0..n)
            .map(|j| lp.add_var(0.0, 4.0 + j as f64, 1.0 + (j as f64) * 0.37))
            .collect();
        for i in 0..n - 1 {
            lp.add_ge(
                vec![(vars[i], 1.0), (vars[i + 1], 0.5 + 0.1 * i as f64)],
                2.0 + i as f64 * 0.25,
            );
        }
        lp.add_le((0..n).map(|j| (vars[j], 1.0)), 40.0);
        lp
    }

    #[test]
    fn engines_agree_on_objective() {
        let mut dense = cross_check_lp();
        dense.set_options(SimplexOptions {
            engine: EngineKind::Dense,
            ..SimplexOptions::default()
        });
        let mut sparse = cross_check_lp();
        sparse.set_options(SimplexOptions {
            engine: EngineKind::Sparse,
            ..SimplexOptions::default()
        });
        let sd = dense.solve().unwrap();
        let ss = sparse.solve().unwrap();
        assert_eq!(sd.status, Status::Optimal);
        assert_eq!(ss.status, Status::Optimal);
        assert_close(ss.objective, sd.objective);
    }

    #[test]
    fn pricing_rules_agree_on_objective() {
        let mut dantzig = cross_check_lp();
        dantzig.set_options(SimplexOptions {
            pricing: Pricing::Dantzig,
            ..SimplexOptions::default()
        });
        let mut devex = cross_check_lp();
        devex.set_options(SimplexOptions {
            pricing: Pricing::Devex,
            ..SimplexOptions::default()
        });
        let sa = dantzig.solve().unwrap();
        let sb = devex.solve().unwrap();
        assert_eq!(sa.status, Status::Optimal);
        assert_eq!(sb.status, Status::Optimal);
        assert_close(sa.objective, sb.objective);
    }

    #[test]
    fn duals_price_out_interior_variables() {
        // min 2x + 3y s.t. x + y >= 10, x >= 2, y >= 3: optimum (7, 3),
        // x strictly interior => c_x = y_row * 1 exactly, so y_row = 2.
        let mut lp = LpProblem::new(Sense::Minimize);
        let x = lp.add_var(2.0, f64::INFINITY, 2.0);
        let y = lp.add_var(3.0, f64::INFINITY, 3.0);
        lp.add_ge(vec![(x, 1.0), (y, 1.0)], 10.0);
        let s = lp.solve().unwrap();
        assert_eq!(s.status, Status::Optimal);
        assert_eq!(s.duals.len(), 1);
        assert_close(s.duals[0], 2.0);
    }

    #[test]
    fn duals_flip_sign_with_sense() {
        // max 3x s.t. x <= 4: relaxing the row by 1 gains 3.
        let mut lp = LpProblem::new(Sense::Maximize);
        let x = lp.add_nonneg(3.0);
        lp.add_le(vec![(x, 1.0)], 4.0);
        let s = lp.solve().unwrap();
        assert_eq!(s.status, Status::Optimal);
        assert_close(s.duals[0], 3.0);
    }
}
