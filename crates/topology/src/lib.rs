//! Network topology substrate for the PCF reproduction.
//!
//! This crate provides the graph model every other crate builds on:
//!
//! * [`graph`] — capacitated multigraphs with undirected links and directed
//!   arc views ([`Topology`], [`NodeId`], [`LinkId`], [`ArcId`]);
//! * [`zoo`] — deterministic synthetic stand-ins for the paper's 21
//!   Internet Topology Zoo evaluation networks (Table 3);
//! * [`gml`] — a parser for real Topology Zoo GML files;
//! * [`srlg`] — shared-risk link group sidecar files (`foo.srlg`), parsed
//!   strictly with line-numbered diagnostics;
//! * [`transform`] — the paper's preprocessing steps (recursive degree-one
//!   pruning, sub-link splitting for multi-failure experiments).

pub mod gml;
pub mod graph;
pub mod srlg;
pub mod transform;
pub mod zoo;

pub use graph::{ArcId, Link, LinkId, NodeId, Topology};
pub use srlg::{SrlgGroup, SrlgParseError, SrlgSet};
