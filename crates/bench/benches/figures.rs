//! Benches: one per paper table/figure, timing the workload that
//! regenerates it (at reduced scale so repeated sampling stays affordable —
//! the full data generation lives in the `experiments` binary).

use pcf_bench::harness::Harness;
use pcf_bench::Scale;
use pcf_core::{
    optimal_demand_scale, pcf_cls_pipeline, pcf_ls_instance, solve_ffc, solve_pcf_ls, solve_pcf_tf,
    tunnel_instance, FailureModel, RobustOptions, ScenarioCoverage,
};
use pcf_topology::transform::split_sublinks;
use pcf_topology::zoo;
use std::hint::black_box;

/// A single tiny scale shared by all benches.
fn tiny() -> Scale {
    Scale {
        topologies: vec!["Sprint"],
        big_topology: "Sprint",
        tm_count: 1,
        optimal_cap: 10,
        ..Scale::quick()
    }
}

fn bench_fig2_and_table1(c: &mut Harness) {
    c.bench_function("fig2/fig1_examples", |b| {
        b.iter(|| black_box(pcf_bench::fig2()))
    });
    c.bench_function("table1/fig5_all_schemes", |b| {
        b.iter(|| black_box(pcf_bench::table1()))
    });
}

fn bench_fig8_ffc_tunnel_sweep(c: &mut Harness) {
    let scale = tiny();
    let topo = zoo::build("Sprint");
    let w = pcf_bench::workload(&topo, 100, &scale);
    let fm = FailureModel::links(1);
    let opts = RobustOptions::default();
    let mut g = c.benchmark_group("fig8");
    g.sample_size(10);
    for k in [2usize, 3, 4] {
        g.bench_function(format!("ffc_{k}_tunnels"), |b| {
            b.iter(|| {
                let inst = tunnel_instance(&w.topo, &w.tm, k);
                black_box(solve_ffc(&inst, &fm, &opts).objective)
            })
        });
    }
    g.bench_function("optimal_sampled", |b| {
        b.iter(|| {
            black_box(optimal_demand_scale(&w.topo, &w.tm, &fm, ScenarioCoverage::Sampled(10)).0)
        })
    });
    g.finish();
}

fn bench_fig9_pcf_tf(c: &mut Harness) {
    let scale = tiny();
    let topo = zoo::build("Sprint");
    let w = pcf_bench::workload(&topo, 100, &scale);
    let fm = FailureModel::links(1);
    let opts = RobustOptions::default();
    let mut g = c.benchmark_group("fig9");
    g.sample_size(10);
    for k in [2usize, 3, 4] {
        g.bench_function(format!("pcf_tf_{k}_tunnels"), |b| {
            b.iter(|| {
                let inst = tunnel_instance(&w.topo, &w.tm, k);
                black_box(solve_pcf_tf(&inst, &fm, &opts).objective)
            })
        });
    }
    g.finish();
}

fn bench_fig10_schemes(c: &mut Harness) {
    let scale = tiny();
    let topo = zoo::build("Sprint");
    let w = pcf_bench::workload(&topo, 100, &scale);
    let fm = FailureModel::links(1);
    let opts = RobustOptions::default();
    let mut g = c.benchmark_group("fig10");
    g.sample_size(10);
    g.bench_function("pcf_ls", |b| {
        b.iter(|| {
            let inst = pcf_ls_instance(&w.topo, &w.tm, 3);
            black_box(solve_pcf_ls(&inst, &fm, &opts).objective)
        })
    });
    g.bench_function("pcf_cls_pipeline", |b| {
        b.iter(|| {
            black_box(
                pcf_cls_pipeline(&w.topo, &w.tm, 3, &fm, &opts)
                    .solution
                    .objective,
            )
        })
    });
    g.finish();
}

fn bench_fig11_row(c: &mut Harness) {
    let scale = tiny();
    let topo = zoo::build("Sprint");
    let w = pcf_bench::workload(&topo, 100, &scale);
    let fm = FailureModel::links(1);
    let mut g = c.benchmark_group("fig11");
    g.sample_size(10);
    g.bench_function("scheme_row_sprint", |b| {
        b.iter(|| black_box(pcf_bench::scheme_row(&w, &fm, 2, 3, 10).pcf_cls))
    });
    g.finish();
}

fn bench_fig12_sublinks(c: &mut Harness) {
    let scale = tiny();
    let topo = split_sublinks(&zoo::build("Sprint"), 2);
    let w = pcf_bench::workload(&topo, 100, &scale);
    let fm = FailureModel::links(3);
    let opts = RobustOptions::default();
    let mut g = c.benchmark_group("fig12");
    g.sample_size(10);
    g.bench_function("ffc_4_tunnels_f3", |b| {
        b.iter(|| {
            let inst = tunnel_instance(&w.topo, &w.tm, 4);
            black_box(solve_ffc(&inst, &fm, &opts).objective)
        })
    });
    g.bench_function("pcf_tf_6_tunnels_f3", |b| {
        b.iter(|| {
            let inst = tunnel_instance(&w.topo, &w.tm, 6);
            black_box(solve_pcf_tf(&inst, &fm, &opts).objective)
        })
    });
    g.finish();
}

fn bench_fig13_throughput(c: &mut Harness) {
    let scale = tiny();
    let topo = split_sublinks(&zoo::build("Sprint"), 2);
    let w = pcf_bench::workload(&topo, 100, &scale);
    let fm = FailureModel::links(3);
    let opts = RobustOptions {
        objective: pcf_core::Objective::Throughput,
        ..RobustOptions::default()
    };
    let mut g = c.benchmark_group("fig13");
    g.sample_size(10);
    g.bench_function("throughput_pcf_tf_f3", |b| {
        b.iter(|| {
            let inst = tunnel_instance(&w.topo, &w.tm, 6);
            black_box(solve_pcf_tf(&inst, &fm, &opts).objective)
        })
    });
    g.finish();
}

fn bench_fig14_solve_times(c: &mut Harness) {
    // Fig. 14 *is* a timing figure; this group is its per-topology data
    // point at bench fidelity.
    let scale = tiny();
    let topo = split_sublinks(&zoo::build("Sprint"), 2);
    let w = pcf_bench::workload(&topo, 100, &scale);
    let fm = FailureModel::links(3);
    let opts = RobustOptions::default();
    let mut g = c.benchmark_group("fig14");
    g.sample_size(10);
    g.bench_function("offline_pcf_tf", |b| {
        b.iter(|| {
            let inst = tunnel_instance(&w.topo, &w.tm, 6);
            black_box(solve_pcf_tf(&inst, &fm, &opts).objective)
        })
    });
    g.bench_function("offline_pcf_cls", |b| {
        b.iter(|| {
            black_box(
                pcf_cls_pipeline(&w.topo, &w.tm, 6, &fm, &opts)
                    .solution
                    .objective,
            )
        })
    });
    g.bench_function("optimal_one_scenario", |b| {
        let mask = vec![false; w.topo.link_count()];
        b.iter(|| black_box(pcf_core::max_concurrent_flow(&w.topo, &w.tm, Some(&mask)).value()))
    });
    g.finish();
}

fn bench_topsort(c: &mut Harness) {
    let scale = tiny();
    let topo = zoo::build("Sprint");
    let w = pcf_bench::workload(&topo, 100, &scale);
    let fm = FailureModel::links(1);
    let opts = RobustOptions::default();
    let cls = pcf_cls_pipeline(&w.topo, &w.tm, 3, &fm, &opts);
    let all: Vec<_> = cls
        .instance
        .ls_ids()
        .map(|q| cls.instance.ls(q).clone())
        .collect();
    let mut g = c.benchmark_group("topsort");
    g.bench_function("greedy_topsort", |b| {
        b.iter(|| black_box(pcf_core::greedy_topsort(&all).1))
    });
    g.finish();
}

fn main() {
    let mut c = Harness::from_args("figures");
    bench_fig2_and_table1(&mut c);
    bench_fig8_ffc_tunnel_sweep(&mut c);
    bench_fig9_pcf_tf(&mut c);
    bench_fig10_schemes(&mut c);
    bench_fig11_row(&mut c);
    bench_fig12_sublinks(&mut c);
    bench_fig13_throughput(&mut c);
    bench_fig14_solve_times(&mut c);
    bench_topsort(&mut c);
    c.finish();
}
