//! Objective metrics `Θ(z)` (paper §3.1).
//!
//! The paper's formulations maximize a concave function of the served
//! fractions `z_st`. Two concrete metrics cover the evaluation:
//!
//! * [`Objective::DemandScale`] — a single scale `z` applied to every
//!   demand (`Θ = z`, the paper's headline metric; its inverse is the MLU);
//! * [`Objective::Throughput`] — total admitted bandwidth
//!   `Θ = Σ min(1, z_st) d_st` (per-pair `z_st`, capped at the demand).

/// The optimization metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// Uniform demand scale: maximize `z` with every pair served `z · d_st`.
    /// Values above 1 mean the network sustains more than the offered load;
    /// `1/z` is the maximum link utilization.
    DemandScale,
    /// Total throughput: maximize `Σ z_st d_st` with `z_st ∈ [0, 1]`.
    Throughput,
}

impl Objective {
    /// Human-readable name used by the experiment harness.
    pub fn name(self) -> &'static str {
        match self {
            Objective::DemandScale => "demand-scale",
            Objective::Throughput => "throughput",
        }
    }
}

/// Throughput overhead `1 - Σ bw / Σ d` (paper §5 "Throughput metric").
///
/// `throughput` is the admitted bandwidth `Σ bw_st`; `total_demand` is
/// `Σ d_st`.
pub fn throughput_overhead(throughput: f64, total_demand: f64) -> f64 {
    assert!(total_demand > 0.0);
    1.0 - throughput / total_demand
}

/// Percentage reduction in throughput overhead relative to a baseline
/// (paper Fig. 13): `100 * (1 - overhead / base_overhead)`.
pub fn overhead_reduction_pct(overhead: f64, base_overhead: f64) -> f64 {
    if base_overhead <= 0.0 {
        return 0.0;
    }
    100.0 * (1.0 - overhead / base_overhead)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_basics() {
        assert!((throughput_overhead(8.0, 10.0) - 0.2).abs() < 1e-12);
        assert_eq!(throughput_overhead(10.0, 10.0), 0.0);
    }

    #[test]
    fn reduction_pct() {
        // overhead 0.1 vs baseline 0.2 -> 50% reduction
        assert!((overhead_reduction_pct(0.1, 0.2) - 50.0).abs() < 1e-12);
        // no baseline overhead -> 0 by convention
        assert_eq!(overhead_reduction_pct(0.1, 0.0), 0.0);
    }

    #[test]
    fn names() {
        assert_eq!(Objective::DemandScale.name(), "demand-scale");
        assert_eq!(Objective::Throughput.name(), "throughput");
    }
}
