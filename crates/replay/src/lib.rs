//! Online failure replay for PCF plans.
//!
//! The offline validator (`pcf_core::validate`) asks "is this allocation
//! safe over a scenario *set*?"; this crate asks the operational question:
//! "as links fail and recover over time, what does the network actually
//! do, and how fast can the response be computed?"
//!
//! * [`EventTrace`] — scripted or generated sequences of link up/down
//!   events ([`trace`]);
//! * [`ReplayEngine`] — incremental failure-state tracking plus an LU
//!   factorization cache keyed by liveness signature, so repeated failure
//!   states skip the O(n³) factor and pay only an O(n²) solve
//!   ([`engine`]);
//! * [`replay_trace`] / [`replay_batch`] — sequential and multi-threaded
//!   replay drivers producing a [`ReplayReport`] (per-event utilization,
//!   ladder stage and shed demand, violation log, latency percentiles,
//!   cache counters) ([`report`]);
//! * [`FaultInjector`] — deterministic adversarial traces (beyond-budget
//!   bursts, capacity wobble, corrupt trace text) that push replays past
//!   the failure budget the plan was solved for ([`inject`]);
//! * [`run_campaign`] — greedy LP-guided adversarial campaigns that pick
//!   the most damaging SRLG/node/link/degradation event each step and
//!   record per-scheme throughput-retention curves ([`campaign`]).
//!
//! Beyond-budget events don't abort the replay: with a
//! [`DegradeMode`](pcf_core::DegradeMode) selected, the engine walks
//! `pcf_core::degrade`'s ladder (exact → rescale → shed) and every event
//! still reports a routing plus the stage that produced it. Degraded
//! routings never enter the factor cache.
//!
//! Cached and cold replays run the same numerical code and produce
//! bit-identical routings; the property tests in this crate hold the
//! engine to that.

pub mod campaign;
pub mod engine;
pub mod inject;
pub mod report;
pub mod shared;
pub mod trace;

pub use campaign::{
    run_campaign, CampaignCurve, CampaignOptions, CampaignPlan, CampaignReport, CampaignStep,
};
pub use engine::{CacheStats, DegradeStats, FactorKind, ReplayEngine};
pub use inject::FaultInjector;
pub use report::{
    replay_batch, replay_trace, EventStage, LatencyHistogram, ReplayOptions, ReplayReport,
    ReplayViolation,
};
pub use shared::SharedFactorCache;
pub use trace::{EventKind, EventTrace, LinkEvent, TraceParseError};
