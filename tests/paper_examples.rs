//! Full reproduction of the paper's worked numbers: Fig. 2 and Table 1.
//!
//! Every value the paper states for its examples is asserted here,
//! including the optimal and R3 columns.

use pcf_core::figures::{
    fig1_instance, fig1_topology, fig3_instance, fig3_topology, fig5_instance, fig5_topology,
    Fig5Variant,
};
use pcf_core::{
    max_concurrent_flow, optimal_demand_scale, solve_ffc, solve_pcf_cls, solve_pcf_ls,
    solve_pcf_tf, solve_r3, FailureModel, RobustOptions, ScenarioCoverage,
};
use pcf_traffic::TrafficMatrix;

fn opts() -> RobustOptions {
    RobustOptions::default()
}

fn assert_value(name: &str, got: f64, want: f64) {
    assert!(
        (got - want).abs() < 1e-5,
        "{name}: got {got}, paper says {want}"
    );
}

/// Fig. 2, f = 1 column: optimal 2, FFC-3 1.5, FFC-4 1.
#[test]
fn fig2_single_failure_column() {
    let (topo, ids) = fig1_topology();
    let mut tm = TrafficMatrix::zeros(topo.node_count());
    tm.set_demand(ids.s, ids.t, 1.0);
    let (opt, _, exact) = optimal_demand_scale(
        &topo,
        &tm,
        &FailureModel::links(1),
        ScenarioCoverage::Exhaustive,
    );
    assert!(exact);
    assert_value("fig2 optimal f=1", opt, 2.0);
    let f3 = solve_ffc(&fig1_instance(3), &FailureModel::links(1), &opts());
    assert_value("fig2 FFC-3 f=1", f3.objective, 1.5);
    let f4 = solve_ffc(&fig1_instance(4), &FailureModel::links(1), &opts());
    assert_value("fig2 FFC-4 f=1", f4.objective, 1.0);
}

/// Fig. 2, f = 2 column (paper text: "the throughput with the optimal,
/// FFC-3, and FFC-4 are 1, 0.5, and 0 respectively").
#[test]
fn fig2_double_failure_column() {
    let (topo, ids) = fig1_topology();
    let mut tm = TrafficMatrix::zeros(topo.node_count());
    tm.set_demand(ids.s, ids.t, 1.0);
    let (opt, _, _) = optimal_demand_scale(
        &topo,
        &tm,
        &FailureModel::links(2),
        ScenarioCoverage::Exhaustive,
    );
    assert_value("fig2 optimal f=2", opt, 1.0);
    let f3 = solve_ffc(&fig1_instance(3), &FailureModel::links(2), &opts());
    assert_value("fig2 FFC-3 f=2", f3.objective, 0.5);
    let f4 = solve_ffc(&fig1_instance(4), &FailureModel::links(2), &opts());
    assert_value("fig2 FFC-4 f=2", f4.objective, 0.0);
}

/// Fig. 3 discussion: the network can carry 2/3 under any single link
/// failure when responding optimally, but tunnel reservations cap FFC at
/// 1/2.
#[test]
fn fig3_optimal_vs_ffc() {
    let (topo, ids, _, _) = fig3_topology();
    let mut tm = TrafficMatrix::zeros(topo.node_count());
    tm.set_demand(ids.s, ids.t, 1.0);
    let (opt, _, _) = optimal_demand_scale(
        &topo,
        &tm,
        &FailureModel::links(1),
        ScenarioCoverage::Exhaustive,
    );
    assert_value("fig3 optimal", opt, 2.0 / 3.0);
    let ffc = solve_ffc(&fig3_instance(), &FailureModel::links(1), &opts());
    assert_value("fig3 FFC", ffc.objective, 0.5);
}

/// Table 1, complete: throughput of every scheme on Fig. 5 under two
/// simultaneous link failures.
#[test]
fn table1_complete() {
    let fm = FailureModel::links(2);
    let (topo, ids) = fig5_topology();
    let mut tm = TrafficMatrix::zeros(topo.node_count());
    tm.set_demand(ids.s, ids.t, 1.0);

    let (opt, _, _) = optimal_demand_scale(&topo, &tm, &fm, ScenarioCoverage::Exhaustive);
    assert_value("table1 Optimal", opt, 1.0);

    let ffc = solve_ffc(&fig5_instance(Fig5Variant::TunnelsOnly), &fm, &opts());
    assert_value("table1 FFC", ffc.objective, 0.0);

    let tf = solve_pcf_tf(&fig5_instance(Fig5Variant::TunnelsOnly), &fm, &opts());
    assert_value("table1 PCF-TF", tf.objective, 2.0 / 3.0);

    let ls = solve_pcf_ls(&fig5_instance(Fig5Variant::UnconditionalLs), &fm, &opts());
    assert_value("table1 PCF-LS", ls.objective, 4.0 / 5.0);

    let cls = solve_pcf_cls(&fig5_instance(Fig5Variant::ConditionalLs), &fm, &opts());
    assert_value("table1 PCF-CLS", cls.objective, 1.0);

    let r3 = solve_r3(&topo, &tm, 2);
    assert_value("table1 R3", r3.objective, 0.0);
}

/// The Fig. 5 no-failure capacity sanity check: s can push 2 units total
/// (4 half-capacity links out of s), so the no-failure optimum is 2.
#[test]
fn fig5_no_failure_capacity() {
    let (topo, ids) = fig5_topology();
    let mut tm = TrafficMatrix::zeros(topo.node_count());
    tm.set_demand(ids.s, ids.t, 1.0);
    let z = max_concurrent_flow(&topo, &tm, None).value();
    assert_value("fig5 no-failure optimum", z, 2.0);
}
