//! Acceptance regression for structured uncertainty sets: a plan solved
//! against the structured model (SRLGs, node failures, partial-capacity
//! degradation) validates congestion-free over *every* enumerated structured
//! scenario, while a plan designed only for independent single-link failures
//! demonstrably violates the same scenarios. Both directions are asserted,
//! on Abilene and Sprint — if the structured plan ever picks up a violation
//! or the link-only plan stops violating, the uncertainty set has silently
//! degenerated.

use pcf_core::{
    pcf_ls_instance, scale_to_mlu, solve_pcf_ls, solve_pcf_tf, tunnel_instance,
    validate_structured, Degradation, FailureModel, GroupBudget, Instance, RobustOptions,
    RobustSolution,
};
use pcf_topology::{zoo, LinkId, NodeId, SrlgSet, Topology};
use pcf_traffic::gravity;

fn served(inst: &Instance, sol: &RobustSolution) -> Vec<f64> {
    inst.pair_ids()
        .map(|p| sol.z[p.0] * inst.demand(p))
        .collect()
}

/// The shared both-directions check: the structured plan must be clean over
/// the full enumerated scenario set, the link-only plan must not be.
fn assert_both_directions(
    inst: &Instance,
    fm: &FailureModel,
    structured: &RobustSolution,
    link_only: &RobustSolution,
    label: &str,
) {
    assert!(
        structured.objective > 0.0,
        "{label}: structured plan admits nothing — the uncertainty set is \
         over-constrained and the zero-violations direction would be vacuous"
    );
    let clean = validate_structured(
        inst,
        fm,
        &structured.a,
        &structured.b,
        &served(inst, structured),
        1e-6,
    );
    assert!(
        clean.congestion_free(),
        "{label}: structured plan has {} violations over its own scenario \
         set, first: {:?}",
        clean.violations.len(),
        clean.violations.first().map(|v| &v.kind)
    );
    let naive = validate_structured(
        inst,
        fm,
        &link_only.a,
        &link_only.b,
        &served(inst, link_only),
        1e-6,
    );
    assert!(
        !naive.violations.is_empty(),
        "{label}: the link-only plan validates clean over the structured \
         scenarios — the regression no longer separates the models"
    );
}

/// SRLG bursts plus a partial-capacity-degradation polytope, solved with
/// PCF-LS. The synthetic SRLGs bundle 3 links per conduit, so any group
/// failure is a triple-link event an `f = 1` link design never planned for;
/// the degradation box additionally lets every link sag to 70% capacity
/// (one link at a time under the 0.3 total-drop budget).
fn srlg_and_degradation(name: &str, seed: u64) {
    let topo = zoo::build(name);
    let (tm, _) = scale_to_mlu(&topo, &gravity(&topo, seed), 0.6);
    let groups = SrlgSet::synthetic(&topo, 3, 4, seed).link_groups();
    let fm = FailureModel::structured(vec![GroupBudget { groups, f: 1 }]).with_degradation(
        &topo,
        Degradation::uniform(topo.link_count(), 0.7).with_budget(0.3),
    );
    let inst = pcf_ls_instance(&topo, &tm, 3);
    let opts = RobustOptions::default();
    let sol = solve_pcf_ls(&inst, &fm, &opts);
    let link_only = solve_pcf_ls(&inst, &FailureModel::links(1), &opts);
    assert_both_directions(&inst, &fm, &sol, &link_only, name);
}

#[test]
fn abilene_srlg_degradation_plan_is_clean_and_link_only_plan_is_not() {
    // Seed 17 is one whose synthetic conduits never disconnect Abilene —
    // a disconnecting group would zero the concurrent scale and make the
    // clean direction vacuous (the objective assert above guards this).
    srlg_and_degradation("Abilene", 17);
}

#[test]
fn sprint_srlg_degradation_plan_is_clean_and_link_only_plan_is_not() {
    srlg_and_degradation("Sprint", 21);
}

/// Node failures composed with degradation: demands flow between two fixed
/// endpoints, every *other* node may fail whole (a transit event killing all
/// its incident links at once), and surviving links may sag to 85%.
fn transit_node_failures(name: &str, src: u32, dst: u32) {
    let topo = zoo::build(name);
    let tm = {
        let mut m = pcf_traffic::TrafficMatrix::zeros(topo.node_count());
        m.set_demand(NodeId(src), NodeId(dst), 1.0);
        m.set_demand(NodeId(dst), NodeId(src), 1.0);
        m
    };
    let transit_groups: Vec<Vec<LinkId>> = topo
        .nodes()
        .filter(|n| n.index() != src as usize && n.index() != dst as usize)
        .map(|n| topo.incident(n).iter().map(|&(_, l)| l).collect())
        .collect();
    let fm = FailureModel::structured(vec![GroupBudget {
        groups: transit_groups,
        f: 1,
    }])
    .with_degradation(
        &topo,
        Degradation::uniform(topo.link_count(), 0.85).with_budget(0.15),
    );
    let inst = tunnel_instance(&topo, &tm, 4);
    let opts = RobustOptions::default();
    let sol = solve_pcf_tf(&inst, &fm, &opts);
    let link_only = solve_pcf_tf(&inst, &FailureModel::links(1), &opts);
    assert_both_directions(&inst, &fm, &sol, &link_only, name);
}

#[test]
fn abilene_transit_node_failures_separate_structured_from_link_only() {
    transit_node_failures("Abilene", 0, 10);
}

#[test]
fn sprint_transit_node_failures_separate_structured_from_link_only() {
    transit_node_failures("Sprint", 0, 9);
}

/// `C(n, k)` without overflow drama at the sizes used here.
fn binomial(n: usize, k: usize) -> usize {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut c: usize = 1;
    for i in 0..k {
        c = c * (n - i) / (i + 1);
    }
    c
}

/// `scenario_count` must match the closed form `C(g, f)` for a single SRLG
/// budget over `g` groups (synthetic groups are disjoint, so enumeration
/// produces exactly that many distinct masks), and multiply across
/// conjunctive budgets as an upper bound on the deduplicated enumeration.
#[test]
fn srlg_scenario_count_matches_closed_form() {
    let topo = zoo::build("Abilene");
    for (count, f) in [(4usize, 1usize), (5, 2), (6, 3)] {
        let groups = SrlgSet::synthetic(&topo, 2, count, 7).link_groups();
        let g = groups.len();
        let fm = FailureModel::srlgs(groups, f);
        let expect = binomial(g, f);
        assert_eq!(fm.scenario_count(&topo), expect, "count for C({g},{f})");
        assert_eq!(
            fm.enumerate_scenarios(&topo).len(),
            expect,
            "enumeration for C({g},{f})"
        );
    }

    // Two conjunctive budgets over disjoint group families: the count is
    // the product, and since every cross combination yields a distinct
    // union mask, enumeration matches it exactly here.
    let a = SrlgSet::synthetic(&topo, 2, 3, 1).link_groups();
    let b: Vec<Vec<LinkId>> = topo.links().take(4).map(|l| vec![l]).collect();
    let disjoint = b
        .iter()
        .all(|s| s.iter().all(|l| a.iter().all(|g| !g.contains(l))));
    let fm = FailureModel::structured(vec![
        GroupBudget { groups: a, f: 1 },
        GroupBudget { groups: b, f: 1 },
    ]);
    let product = binomial(3, 1) * binomial(4, 1);
    assert_eq!(fm.scenario_count(&topo), product);
    if disjoint {
        assert_eq!(fm.enumerate_scenarios(&topo).len(), product);
    } else {
        assert!(fm.enumerate_scenarios(&topo).len() <= product);
    }
}

/// Degradation corners multiply into the structured scenario set: every
/// failure mask pairs with each single-link sag corner plus the undegraded
/// corner.
#[test]
fn structured_scenarios_compose_masks_with_degradation_corners() {
    let topo: Topology = zoo::build("Abilene");
    let groups = SrlgSet::synthetic(&topo, 3, 4, 11).link_groups();
    let g = groups.len();
    let fm = FailureModel::structured(vec![GroupBudget { groups, f: 1 }]).with_degradation(
        &topo,
        Degradation::uniform(topo.link_count(), 0.7).with_budget(0.3),
    );
    let scenarios = fm.enumerate_structured_scenarios(&topo);
    // The 0.3 budget binds (total room is 0.3 · link_count), so the corner
    // list is exactly one per link; each mask also appears undegraded.
    assert_eq!(scenarios.len(), g * (topo.link_count() + 1));
    assert!(scenarios.iter().any(|s| s.undegraded()));
    assert!(scenarios.iter().any(|s| !s.undegraded()));
}
