//! The whole-workspace call graph and reachability with witness chains.
//!
//! Nodes are `fn` items from every parsed file; edges are resolved call
//! expressions. Resolution is *receiver-typed where possible,
//! conservative everywhere else*:
//!
//! * `self.method(..)` → methods of the enclosing `impl` type;
//! * `recv.method(..)` → the receiver's type from parameter, local, or
//!   struct-field declarations (chains like `self.cache.lookup(..)`
//!   resolve through field types);
//! * `Type::method(..)` → that type's methods; a trait name resolves to
//!   every implementor's method (dynamic dispatch is over-approximated
//!   by all impls);
//! * `free(..)` → free functions, preferring the same file (so a
//!   shadowed helper name binds to the local one);
//! * unresolvable receivers (chained calls, generics, indexing) fall
//!   back to **every** same-name method in the workspace — reachability
//!   must over-approximate, never miss: a false edge costs an
//!   `audit:allow` with a reason, a missing edge hides a panic.
//!
//! Calls that resolve to nothing are std-library leaves and produce no
//! edges. Test functions are excluded as both sources and targets.

use crate::parse::{CallTarget, FnItem, ParsedFile, Receiver};
use crate::scanner::ScannedFile;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// One workspace file after scanning and parsing.
#[derive(Debug, Clone)]
pub struct AnalyzedFile {
    /// Workspace-relative path.
    pub rel: String,
    /// Masked lines, test regions, allows.
    pub scanned: ScannedFile,
    /// Items and calls.
    pub parsed: ParsedFile,
}

/// The call graph over a set of analyzed files.
pub struct CallGraph {
    /// Node → (file index, fn index within that file's `parsed.fns`).
    pub nodes: Vec<(usize, usize)>,
    /// Node → call index → resolved target nodes (empty = std leaf).
    pub call_edges: Vec<Vec<Vec<usize>>>,
    /// Node → deduped successor set.
    pub edges: Vec<Vec<usize>>,
}

impl CallGraph {
    /// Builds the graph: indexes every fn, then resolves every call.
    pub fn build(files: &[AnalyzedFile]) -> CallGraph {
        let mut nodes: Vec<(usize, usize)> = Vec::new();
        for (fi, f) in files.iter().enumerate() {
            for (gi, _) in f.parsed.fns.iter().enumerate() {
                nodes.push((fi, gi));
            }
        }
        let item = |n: usize| -> &FnItem {
            let (fi, gi) = nodes[n];
            &files[fi].parsed.fns[gi]
        };
        // Name → nodes, excluding test fns (never call targets here).
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for n in 0..nodes.len() {
            let f = item(n);
            if !f.is_test {
                by_name.entry(&f.name).or_default().push(n);
            }
        }
        // Known workspace types and traits, and the global field map.
        let mut known_types: BTreeSet<&str> = BTreeSet::new();
        let mut traits: BTreeSet<&str> = BTreeSet::new();
        let mut fields: BTreeMap<&str, &BTreeMap<String, String>> = BTreeMap::new();
        for f in files {
            for (sname, smap) in &f.parsed.structs {
                known_types.insert(sname);
                fields.entry(sname).or_insert(smap);
            }
        }
        for n in 0..nodes.len() {
            let f = item(n);
            if let Some(t) = &f.impl_type {
                known_types.insert(t);
            }
            if let Some(t) = &f.trait_of {
                traits.insert(t);
                known_types.insert(t);
            }
        }
        let resolver = Resolver {
            files,
            nodes: &nodes,
            by_name: &by_name,
            known_types: &known_types,
            traits: &traits,
            fields: &fields,
        };
        let mut call_edges: Vec<Vec<Vec<usize>>> = Vec::with_capacity(nodes.len());
        let mut edges: Vec<Vec<usize>> = Vec::with_capacity(nodes.len());
        for n in 0..nodes.len() {
            let f = item(n);
            if f.is_test {
                call_edges.push(vec![Vec::new(); f.calls.len()]);
                edges.push(Vec::new());
                continue;
            }
            let per_call: Vec<Vec<usize>> = f
                .calls
                .iter()
                .map(|c| resolver.resolve(n, &c.target))
                .collect();
            let mut succ: Vec<usize> = per_call.iter().flatten().copied().collect();
            succ.sort_unstable();
            succ.dedup();
            call_edges.push(per_call);
            edges.push(succ);
        }
        CallGraph {
            nodes,
            call_edges,
            edges,
        }
    }

    /// The fn item behind a node.
    pub fn fn_of<'a>(&self, files: &'a [AnalyzedFile], n: usize) -> &'a FnItem {
        let (fi, gi) = self.nodes[n];
        &files[fi].parsed.fns[gi]
    }

    /// The file behind a node.
    pub fn file_of<'a>(&self, files: &'a [AnalyzedFile], n: usize) -> &'a AnalyzedFile {
        &files[self.nodes[n].0]
    }

    /// Finds nodes matching (file prefix, impl type, fn name). The
    /// impl-type filter is skipped when `None`.
    pub fn lookup(
        &self,
        files: &[AnalyzedFile],
        file_prefix: &str,
        impl_type: Option<&str>,
        name: &str,
    ) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&n| {
                let f = self.fn_of(files, n);
                let file = self.file_of(files, n);
                !f.is_test
                    && f.name == name
                    && file.rel.starts_with(file_prefix)
                    && match impl_type {
                        Some(t) => f.impl_type.as_deref() == Some(t),
                        None => f.impl_type.is_none(),
                    }
            })
            .collect()
    }

    /// BFS from `start`; returns the visit order and a parent map for
    /// witness-chain reconstruction.
    pub fn bfs(&self, start: usize) -> (Vec<usize>, Vec<Option<usize>>) {
        let mut parents: Vec<Option<usize>> = vec![None; self.nodes.len()];
        let mut seen = vec![false; self.nodes.len()];
        let mut order = Vec::new();
        let mut q = VecDeque::new();
        seen[start] = true;
        q.push_back(start);
        while let Some(n) = q.pop_front() {
            order.push(n);
            for &m in &self.edges[n] {
                if !seen[m] {
                    seen[m] = true;
                    parents[m] = Some(n);
                    q.push_back(m);
                }
            }
        }
        (order, parents)
    }

    /// Reconstructs the call chain `start → ... → node` as fn labels.
    pub fn chain(
        &self,
        files: &[AnalyzedFile],
        parents: &[Option<usize>],
        node: usize,
    ) -> Vec<String> {
        let mut rev = vec![node];
        let mut cur = node;
        while let Some(p) = parents[cur] {
            rev.push(p);
            cur = p;
        }
        rev.reverse();
        rev.into_iter()
            .map(|n| self.fn_of(files, n).label())
            .collect()
    }
}

struct Resolver<'a> {
    files: &'a [AnalyzedFile],
    nodes: &'a [(usize, usize)],
    by_name: &'a BTreeMap<&'a str, Vec<usize>>,
    known_types: &'a BTreeSet<&'a str>,
    traits: &'a BTreeSet<&'a str>,
    fields: &'a BTreeMap<&'a str, &'a BTreeMap<String, String>>,
}

impl Resolver<'_> {
    fn item(&self, n: usize) -> &FnItem {
        let (fi, gi) = self.nodes[n];
        &self.files[fi].parsed.fns[gi]
    }

    fn file_rel(&self, n: usize) -> &str {
        &self.files[self.nodes[n].0].rel
    }

    fn named(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All methods (has_self) with this name — the conservative
    /// fallback for unresolvable receivers.
    fn all_methods(&self, name: &str) -> Vec<usize> {
        self.named(name)
            .iter()
            .copied()
            .filter(|&n| self.item(n).has_self)
            .collect()
    }

    /// Methods of a concrete type, plus trait-dispatch expansion when
    /// the "type" is actually a trait name.
    fn methods_of(&self, ty: &str, name: &str) -> Vec<usize> {
        let direct: Vec<usize> = self
            .named(name)
            .iter()
            .copied()
            .filter(|&n| self.item(n).impl_type.as_deref() == Some(ty))
            .collect();
        if !direct.is_empty() {
            return direct;
        }
        if self.traits.contains(ty) {
            return self
                .named(name)
                .iter()
                .copied()
                .filter(|&n| self.item(n).trait_of.as_deref() == Some(ty))
                .collect();
        }
        Vec::new()
    }

    /// Resolves a receiver chain to a type name, or None.
    fn receiver_type(&self, caller: &FnItem, receiver: &Receiver) -> Option<String> {
        let Receiver::Chain {
            head,
            fields,
            indexed,
        } = receiver
        else {
            return None;
        };
        if *indexed {
            return None; // container element type is unknown
        }
        let mut ty: String = match head {
            None => caller.impl_type.clone()?,
            Some(v) => {
                let annotated = caller
                    .params
                    .get(v)
                    .or_else(|| caller.locals.get(v))
                    .cloned()?;
                // A short all-capitalized annotation (`T`, `F`, `K2`) is
                // a generic parameter: unresolvable, so the caller falls
                // back to every same-name method (conservative). The
                // check only applies here — `self` receivers and struct
                // fields always name concrete types.
                if Self::is_generic_param(&annotated) {
                    return None;
                }
                annotated
            }
        };
        for field in fields {
            ty = self.fields.get(ty.as_str())?.get(field)?.clone();
        }
        Some(ty)
    }

    /// Single-uppercase-letter types are generic parameters: treat as
    /// unresolved (conservative fallback), not as std leaves.
    fn is_generic_param(ty: &str) -> bool {
        ty.len() <= 2 && ty.chars().next().is_some_and(|c| c.is_ascii_uppercase())
    }

    fn resolve(&self, caller_node: usize, target: &CallTarget) -> Vec<usize> {
        let caller = self.item(caller_node);
        let caller_file = self.nodes[caller_node].0;
        match target {
            CallTarget::Macro(_) => Vec::new(),
            CallTarget::Free(name) => {
                // `f(..)` where `f` is a parameter or local is a call
                // through a closure/fn-pointer variable, not a free fn —
                // no static target (the closure's own body is analyzed
                // at its definition site).
                if caller.params.contains_key(name) || caller.locals.contains_key(name) {
                    return Vec::new();
                }
                let free: Vec<usize> = self
                    .named(name)
                    .iter()
                    .copied()
                    .filter(|&n| self.item(n).impl_type.is_none())
                    .collect();
                // Prefer same-file definitions: a local helper shadows
                // same-name helpers elsewhere.
                let same_file: Vec<usize> = free
                    .iter()
                    .copied()
                    .filter(|&n| self.nodes[n].0 == caller_file)
                    .collect();
                if same_file.is_empty() {
                    free
                } else {
                    same_file
                }
            }
            CallTarget::Path { qualifier, name } => {
                let q: &str = match qualifier.as_str() {
                    "Self" => match &caller.impl_type {
                        Some(t) => t,
                        None => return Vec::new(),
                    },
                    q => q,
                };
                let typed = self.methods_of(q, name);
                if !typed.is_empty() {
                    return typed;
                }
                // Module-path call (`zoo::build(..)`, `slu::refactor`):
                // free fns in files named after the qualifier.
                let module: Vec<usize> = self
                    .named(name)
                    .iter()
                    .copied()
                    .filter(|&n| {
                        self.item(n).impl_type.is_none() && {
                            let rel = self.file_rel(n);
                            rel.ends_with(&format!("/{q}.rs")) || rel.contains(&format!("/{q}/"))
                        }
                    })
                    .collect();
                if !module.is_empty() {
                    return module;
                }
                if self.known_types.contains(q) {
                    // A known type without this method: std-derived
                    // (clone, fmt...) — leaf.
                    return Vec::new();
                }
                // Crate-path call (`pcf_lp::lu_factor`): any free fn.
                self.named(name)
                    .iter()
                    .copied()
                    .filter(|&n| self.item(n).impl_type.is_none())
                    .collect()
            }
            CallTarget::Method { receiver, name } => {
                match self.receiver_type(caller, receiver) {
                    Some(ty) => {
                        let typed = self.methods_of(&ty, name);
                        if !typed.is_empty() {
                            return typed;
                        }
                        if self.known_types.contains(ty.as_str()) {
                            // Workspace type, but no such method in the
                            // workspace (derived/std trait method).
                            return Vec::new();
                        }
                        // Std container or unknown type: leaf.
                        Vec::new()
                    }
                    // Unresolvable receiver: every same-name method.
                    None => self.all_methods(name),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_file;
    use crate::scanner::ScannedFile;

    fn analyze(rel: &str, src: &str) -> AnalyzedFile {
        let scanned = ScannedFile::scan(src);
        let parsed = parse_file(&scanned);
        AnalyzedFile {
            rel: rel.to_string(),
            scanned,
            parsed,
        }
    }

    fn labels(g: &CallGraph, files: &[AnalyzedFile], nodes: &[usize]) -> Vec<String> {
        nodes.iter().map(|&n| g.fn_of(files, n).label()).collect()
    }

    #[test]
    fn self_methods_resolve_within_the_impl_type() {
        let files = vec![analyze(
            "crates/x/src/a.rs",
            "struct A;\nimpl A {\n    fn top(&self) { self.helper(); }\n    fn helper(&self) {}\n}\nstruct B;\nimpl B {\n    fn helper(&self) {}\n}\n",
        )];
        let g = CallGraph::build(&files);
        let top = g.lookup(&files, "crates/", Some("A"), "top")[0];
        assert_eq!(labels(&g, &files, &g.edges[top]), vec!["A::helper"]);
    }

    #[test]
    fn field_chain_receivers_resolve_through_struct_types() {
        let files = vec![
            analyze(
                "crates/x/src/server.rs",
                "struct Server { log: Arc<EventLog> }\nimpl Server {\n    fn handle(&self) { self.log.push(1); }\n}\n",
            ),
            analyze(
                "crates/x/src/log.rs",
                "pub struct EventLog;\nimpl EventLog {\n    pub fn push(&self, e: u64) {}\n}\nstruct Other;\nimpl Other {\n    fn push(&self) {}\n}\n",
            ),
        ];
        let g = CallGraph::build(&files);
        let h = g.lookup(&files, "crates/", Some("Server"), "handle")[0];
        assert_eq!(labels(&g, &files, &g.edges[h]), vec!["EventLog::push"]);
    }

    #[test]
    fn trait_method_dispatch_reaches_every_implementor() {
        let files = vec![analyze(
            "crates/x/src/a.rs",
            "struct Holder { f: Box<dyn Factor> }\ntrait Factor {\n    fn solve(&self);\n}\nstruct Dense;\nimpl Factor for Dense {\n    fn solve(&self) { dense_work(); }\n}\nstruct Sparse;\nimpl Factor for Sparse {\n    fn solve(&self) { sparse_work(); }\n}\nimpl Holder {\n    fn go(&self) { self.f.solve(); }\n}\nfn dense_work() {}\nfn sparse_work() {}\n",
        )];
        let g = CallGraph::build(&files);
        let go = g.lookup(&files, "crates/", Some("Holder"), "go")[0];
        let succ = labels(&g, &files, &g.edges[go]);
        assert!(succ.contains(&"Dense::solve".to_string()), "{succ:?}");
        assert!(succ.contains(&"Sparse::solve".to_string()), "{succ:?}");
    }

    #[test]
    fn free_calls_prefer_the_same_file() {
        let files = vec![
            analyze(
                "crates/x/src/a.rs",
                "fn caller() { helper(); }\nfn helper() {}\n",
            ),
            analyze("crates/y/src/b.rs", "fn helper() { panic!(\"other\"); }\n"),
        ];
        let g = CallGraph::build(&files);
        let c = g.lookup(&files, "crates/x", None, "caller")[0];
        assert_eq!(g.edges[c].len(), 1);
        assert_eq!(g.file_of(&files, g.edges[c][0]).rel, "crates/x/src/a.rs");
    }

    #[test]
    fn macros_are_not_call_edges() {
        let files = vec![analyze(
            "crates/x/src/a.rs",
            "fn caller() { helper!(); }\nfn helper() {}\n",
        )];
        let g = CallGraph::build(&files);
        let c = g.lookup(&files, "crates/", None, "caller")[0];
        assert!(g.edges[c].is_empty());
    }

    #[test]
    fn test_fns_are_excluded_as_targets() {
        let files = vec![analyze(
            "crates/x/src/a.rs",
            "fn caller() { helper(); }\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\n",
        )];
        let g = CallGraph::build(&files);
        let c = g.lookup(&files, "crates/", None, "caller")[0];
        assert!(g.edges[c].is_empty(), "test helper must not be a target");
    }

    #[test]
    fn bfs_chains_reconstruct_witness_paths() {
        let files = vec![analyze(
            "crates/x/src/a.rs",
            "fn a() { b(); }\nfn b() { c(); }\nfn c() {}\n",
        )];
        let g = CallGraph::build(&files);
        let a = g.lookup(&files, "crates/", None, "a")[0];
        let c = g.lookup(&files, "crates/", None, "c")[0];
        let (order, parents) = g.bfs(a);
        assert!(order.contains(&c));
        assert_eq!(g.chain(&files, &parents, c), vec!["a", "b", "c"]);
    }
}
