//! The wire protocol: one JSON object per line, `cmd` selects the verb.
//!
//! Requests (⇒ example response):
//!
//! ```text
//! {"cmd":"ping"}                                ⇒ {"ok":true,"pong":true,"gen":1}
//! {"cmd":"down","link":3}                       ⇒ {"ok":true,"gen":1,"dead_links":1}
//! {"cmd":"up","link":3}                         ⇒ {"ok":true,"gen":1,"dead_links":0}
//! {"cmd":"wobble","link":3,"permille":500}      ⇒ {"ok":true,"gen":1,"dead_links":0}
//! {"cmd":"degrade","link":3,"permille":500}     ⇒ {"ok":true,"gen":1,"dead_links":0}
//! {"cmd":"srlg","group":0}                      ⇒ {"ok":true,"gen":1,"dead_links":2,"downed":2}
//! {"cmd":"node","node":4}                       ⇒ {"ok":true,"gen":1,"dead_links":3,"downed":3}
//! {"cmd":"rebase","link":3,"permille":500}      ⇒ {"ok":true,"gen":1}      (new plan published later)
//! {"cmd":"reset"}                               ⇒ {"ok":true,"gen":1,"dead_links":0}
//! {"cmd":"realize"}                             ⇒ {"ok":true,"gen":1,"stage":"normal","max_utilization":0.7,"shed":0,"dead_links":0}
//! {"cmd":"util","limit":3}                      ⇒ {"ok":true,"gen":1,"max_utilization":0.7,"hot_arcs":[{"arc":4,"utilization":0.7}]}
//! {"cmd":"plan"}                                ⇒ {"ok":true,"gen":1,"topology":"Sprint","scheme":"pcf-ls",...,"plan_digest":"..."}
//! {"cmd":"admit","src":"A","dst":"B","demand":2}⇒ {"ok":true,"admitted":true,"headroom":3.1,"relaxed":true,"gen":1}
//! {"cmd":"stats"}                               ⇒ {"ok":true,"report":{...},"deterministic":{...}}
//! {"cmd":"update","scale":1.2,"seed":7}         ⇒ {"ok":true,"gen":1}      (new plan published later)
//! {"cmd":"wait","gen":2,"timeout_ms":30000}     ⇒ {"ok":true,"gen":2}
//! {"cmd":"shutdown"}                            ⇒ {"ok":true}
//! ```
//!
//! Every response carries `"ok"`. Failures are
//! `{"ok":false,"error":"..."}` — still one line, still JSON, so a
//! scripted client can always keep request/response alignment.

use crate::json::Json;

/// A parsed protocol request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness check.
    Ping,
    /// Fail a link.
    Down {
        /// Link index.
        link: u32,
    },
    /// Recover a link.
    Up {
        /// Link index.
        link: u32,
    },
    /// Rescale a link's capacity.
    Wobble {
        /// Link index.
        link: u32,
        /// New capacity in permille of nominal.
        permille: u32,
    },
    /// Partially degrade a link's capacity: unlike `wobble`, the
    /// realization sees it (reservations rescale) and it participates in
    /// the factor-cache key.
    Degrade {
        /// Link index.
        link: u32,
        /// Surviving capacity in permille of nominal (1..=1000; 1000
        /// restores).
        permille: u32,
    },
    /// Fire a shared-risk link group: every member link goes down as one
    /// correlated burst.
    Srlg {
        /// Group index into the served plan's SRLG table.
        group: u32,
    },
    /// Fail a node: every incident link goes down.
    Node {
        /// Node index.
        node: u32,
    },
    /// Permanently rebase a link's nominal capacity to `permille` of its
    /// current nominal, and re-solve the plan against the new topology.
    Rebase {
        /// Link index.
        link: u32,
        /// New nominal capacity in permille of the current nominal
        /// (1..=10000 — rebases can add capacity too).
        permille: u32,
    },
    /// Clear all failures, wobbles, and degradations.
    Reset,
    /// Realize the routing for the current failure state.
    Realize,
    /// Realize and report the hottest arcs.
    Util {
        /// Maximum number of hot arcs to report.
        limit: usize,
    },
    /// Describe the published plan.
    Plan,
    /// Admission check: can `demand` extra units be served between `src`
    /// and `dst` under every modeled failure scenario?
    Admit {
        /// Source node name.
        src: String,
        /// Destination node name.
        dst: String,
        /// Extra demand to admit.
        demand: f64,
    },
    /// Telemetry snapshot.
    Stats,
    /// Ask the background solver for a new plan.
    Update {
        /// New demand scale (defaults to the current epoch's).
        scale: Option<f64>,
        /// New gravity seed (defaults to the current epoch's).
        seed: Option<u64>,
    },
    /// Block until the published generation reaches `gen`.
    Wait {
        /// Target generation.
        gen: u64,
        /// Give up after this many milliseconds.
        timeout_ms: u64,
    },
    /// Stop the server.
    Shutdown,
}

/// Parses one request line. Errors are human-readable strings the server
/// echoes back in an `{"ok":false}` response.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = Json::parse(line).map_err(|e| e.to_string())?;
    let cmd = v
        .get("cmd")
        .and_then(Json::as_str)
        .ok_or("missing \"cmd\" field")?;
    let link = |v: &Json| -> Result<u32, String> {
        v.get("link")
            .and_then(Json::as_u64)
            .filter(|&l| l < (1 << 30))
            .map(|l| l as u32)
            .ok_or_else(|| format!("{cmd}: needs \"link\" (index < 2^30)"))
    };
    match cmd {
        "ping" => Ok(Request::Ping),
        "down" => Ok(Request::Down { link: link(&v)? }),
        "up" => Ok(Request::Up { link: link(&v)? }),
        "wobble" => {
            let permille = v
                .get("permille")
                .and_then(Json::as_u64)
                .filter(|&p| p <= 1000)
                .ok_or("wobble: needs \"permille\" in 0..=1000")?;
            Ok(Request::Wobble {
                link: link(&v)?,
                permille: permille as u32,
            })
        }
        "degrade" => {
            let permille = v
                .get("permille")
                .and_then(Json::as_u64)
                .filter(|&p| (1..=1000).contains(&p))
                .ok_or("degrade: needs \"permille\" in 1..=1000 (script total loss as down)")?;
            Ok(Request::Degrade {
                link: link(&v)?,
                permille: permille as u32,
            })
        }
        "srlg" => {
            let group = v
                .get("group")
                .and_then(Json::as_u64)
                .filter(|&g| g < (1 << 30))
                .ok_or("srlg: needs \"group\" (index < 2^30)")?;
            Ok(Request::Srlg {
                group: group as u32,
            })
        }
        "node" => {
            let node = v
                .get("node")
                .and_then(Json::as_u64)
                .filter(|&n| n < (1 << 30))
                .ok_or("node: needs \"node\" (index < 2^30)")?;
            Ok(Request::Node { node: node as u32 })
        }
        "rebase" => {
            let permille = v
                .get("permille")
                .and_then(Json::as_u64)
                .filter(|&p| (1..=10_000).contains(&p))
                .ok_or("rebase: needs \"permille\" in 1..=10000")?;
            Ok(Request::Rebase {
                link: link(&v)?,
                permille: permille as u32,
            })
        }
        "reset" => Ok(Request::Reset),
        "realize" => Ok(Request::Realize),
        "util" => {
            let limit = v.get("limit").and_then(Json::as_u64).unwrap_or(5) as usize;
            Ok(Request::Util {
                limit: limit.min(64),
            })
        }
        "plan" => Ok(Request::Plan),
        "admit" => {
            let src = v
                .get("src")
                .and_then(Json::as_str)
                .ok_or("admit: needs \"src\" node name")?;
            let dst = v
                .get("dst")
                .and_then(Json::as_str)
                .ok_or("admit: needs \"dst\" node name")?;
            let demand = v
                .get("demand")
                .and_then(Json::as_f64)
                .filter(|d| d.is_finite() && *d >= 0.0)
                .ok_or("admit: needs finite non-negative \"demand\"")?;
            Ok(Request::Admit {
                src: src.to_string(),
                dst: dst.to_string(),
                demand,
            })
        }
        "stats" => Ok(Request::Stats),
        "update" => {
            let scale = match v.get("scale") {
                None => None,
                Some(s) => Some(
                    s.as_f64()
                        .filter(|x| x.is_finite() && *x > 0.0)
                        .ok_or("update: \"scale\" must be positive and finite")?,
                ),
            };
            let seed = match v.get("seed") {
                None => None,
                Some(s) => Some(
                    s.as_u64()
                        .ok_or("update: \"seed\" must be a non-negative integer")?,
                ),
            };
            Ok(Request::Update { scale, seed })
        }
        "wait" => {
            let gen = v
                .get("gen")
                .and_then(Json::as_u64)
                .ok_or("wait: needs target \"gen\"")?;
            let timeout_ms = v.get("timeout_ms").and_then(Json::as_u64).unwrap_or(30_000);
            Ok(Request::Wait { gen, timeout_ms })
        }
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!("unknown command {other:?}")),
    }
}

/// Builds the uniform failure response.
pub fn error_response(message: &str) -> String {
    Json::Obj(vec![
        ("ok".into(), Json::Bool(false)),
        ("error".into(), Json::str(message)),
    ])
    .render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commands_parse() {
        assert_eq!(parse_request(r#"{"cmd":"ping"}"#), Ok(Request::Ping));
        assert_eq!(
            parse_request(r#"{"cmd":"down","link":3}"#),
            Ok(Request::Down { link: 3 })
        );
        assert_eq!(
            parse_request(r#"{"cmd":"wobble","link":1,"permille":250}"#),
            Ok(Request::Wobble {
                link: 1,
                permille: 250
            })
        );
        assert_eq!(
            parse_request(r#"{"cmd":"degrade","link":2,"permille":500}"#),
            Ok(Request::Degrade {
                link: 2,
                permille: 500
            })
        );
        assert_eq!(
            parse_request(r#"{"cmd":"srlg","group":1}"#),
            Ok(Request::Srlg { group: 1 })
        );
        assert_eq!(
            parse_request(r#"{"cmd":"node","node":4}"#),
            Ok(Request::Node { node: 4 })
        );
        assert_eq!(
            parse_request(r#"{"cmd":"rebase","link":3,"permille":2000}"#),
            Ok(Request::Rebase {
                link: 3,
                permille: 2000
            })
        );
        assert_eq!(
            parse_request(r#"{"cmd":"admit","src":"A","dst":"B","demand":1.5}"#),
            Ok(Request::Admit {
                src: "A".into(),
                dst: "B".into(),
                demand: 1.5
            })
        );
        assert_eq!(
            parse_request(r#"{"cmd":"update","scale":1.25}"#),
            Ok(Request::Update {
                scale: Some(1.25),
                seed: None
            })
        );
        assert_eq!(
            parse_request(r#"{"cmd":"wait","gen":2}"#),
            Ok(Request::Wait {
                gen: 2,
                timeout_ms: 30_000
            })
        );
        assert_eq!(
            parse_request(r#"{"cmd":"util"}"#),
            Ok(Request::Util { limit: 5 })
        );
    }

    #[test]
    fn malformed_commands_are_rejected_with_reasons() {
        for (line, needle) in [
            ("nonsense", "json error"),
            (r#"{"verb":"ping"}"#, "cmd"),
            (r#"{"cmd":"warp"}"#, "unknown command"),
            (r#"{"cmd":"down"}"#, "link"),
            (r#"{"cmd":"wobble","link":1,"permille":2000}"#, "permille"),
            (r#"{"cmd":"degrade","link":1,"permille":0}"#, "permille"),
            (r#"{"cmd":"degrade","link":1,"permille":1001}"#, "permille"),
            (r#"{"cmd":"srlg"}"#, "group"),
            (r#"{"cmd":"node"}"#, "node"),
            (r#"{"cmd":"rebase","link":1,"permille":0}"#, "permille"),
            (r#"{"cmd":"rebase","link":1,"permille":20000}"#, "permille"),
            (
                r#"{"cmd":"admit","src":"A","dst":"B","demand":-1}"#,
                "demand",
            ),
            (r#"{"cmd":"admit","src":"A","demand":1}"#, "dst"),
            (r#"{"cmd":"update","scale":0}"#, "scale"),
            (r#"{"cmd":"wait"}"#, "gen"),
        ] {
            let err = parse_request(line).expect_err(line);
            assert!(err.contains(needle), "{line}: {err}");
        }
    }

    #[test]
    fn error_responses_are_parseable_json() {
        let resp = error_response("bad \"thing\"\nhappened");
        let v = Json::parse(&resp).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
        assert!(v
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("bad"));
    }
}
