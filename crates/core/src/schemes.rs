//! The congestion-free schemes evaluated in the paper (§5).
//!
//! Thin, documented entry points over the robust engine:
//!
//! * [`solve_ffc`] — FFC (Liu et al., SIGCOMM '14): tunnel reservations with
//!   the `p_st` tunnel-count failure set (Eq. 5);
//! * [`solve_pcf_tf`] — PCF-TF (§3.2): same response mechanism, link-coupled
//!   failure set (Eq. 4);
//! * [`solve_pcf_ls`] — PCF-LS (§3.3): adds unconditional logical sequences
//!   (the shortest-path LS heuristic of §5);
//! * [`solve_pcf_cls`] — PCF-CLS (§3.4): conditional logical sequences
//!   derived by decomposing a restricted logical-flow model (§3.5); see
//!   [`crate::logical_flow`].

use crate::failure::FailureModel;
use crate::instance::{Instance, InstanceBuilder, LogicalSequence};
use crate::robust::{
    solve_robust, try_solve_robust_seeded, AdversaryKind, CutPool, RobustError, RobustOptions,
    RobustSolution,
};
use pcf_topology::Topology;
use pcf_traffic::TrafficMatrix;

/// Solves FFC on a pure-tunnel instance.
///
/// # Panics
/// Panics if the instance contains logical sequences.
pub fn solve_ffc(inst: &Instance, fm: &FailureModel, opts: &RobustOptions) -> RobustSolution {
    solve_robust(inst, fm, AdversaryKind::FfcTunnelCount, opts)
}

/// Solves PCF-TF: FFC's response mechanism with the link-coupled failure
/// set. Accepts pure-tunnel instances only (use [`solve_pcf_ls`] for LSs).
///
/// # Panics
/// Panics if the instance contains logical sequences.
pub fn solve_pcf_tf(inst: &Instance, fm: &FailureModel, opts: &RobustOptions) -> RobustSolution {
    assert_eq!(
        inst.num_lss(),
        0,
        "PCF-TF is the tunnel-only model; build LSs with solve_pcf_ls"
    );
    solve_robust(inst, fm, AdversaryKind::LinkBased, opts)
}

/// Solves the LS model (P2) — PCF-LS when every LS is unconditional,
/// PCF-CLS when conditions are attached.
pub fn solve_pcf_ls(inst: &Instance, fm: &FailureModel, opts: &RobustOptions) -> RobustSolution {
    solve_robust(inst, fm, AdversaryKind::LinkBased, opts)
}

/// Alias of [`solve_pcf_ls`] for instances carrying conditional LSs.
pub fn solve_pcf_cls(inst: &Instance, fm: &FailureModel, opts: &RobustOptions) -> RobustSolution {
    solve_robust(inst, fm, AdversaryKind::LinkBased, opts)
}

/// [`solve_ffc`] with a [`CutPool`] warm start (see
/// [`try_solve_robust_seeded`]): seed with a previous epoch's pool and get
/// back the pool for the next one.
///
/// # Panics
/// Panics if the instance contains logical sequences.
pub fn solve_ffc_seeded(
    inst: &Instance,
    fm: &FailureModel,
    opts: &RobustOptions,
    seed: Option<&CutPool>,
) -> Result<(RobustSolution, CutPool), RobustError> {
    try_solve_robust_seeded(inst, fm, AdversaryKind::FfcTunnelCount, opts, seed)
}

/// [`solve_pcf_tf`] with a [`CutPool`] warm start.
///
/// # Panics
/// Panics if the instance contains logical sequences.
pub fn solve_pcf_tf_seeded(
    inst: &Instance,
    fm: &FailureModel,
    opts: &RobustOptions,
    seed: Option<&CutPool>,
) -> Result<(RobustSolution, CutPool), RobustError> {
    assert_eq!(
        inst.num_lss(),
        0,
        "PCF-TF is the tunnel-only model; build LSs with solve_pcf_ls"
    );
    try_solve_robust_seeded(inst, fm, AdversaryKind::LinkBased, opts, seed)
}

/// [`solve_pcf_ls`] with a [`CutPool`] warm start.
pub fn solve_pcf_ls_seeded(
    inst: &Instance,
    fm: &FailureModel,
    opts: &RobustOptions,
    seed: Option<&CutPool>,
) -> Result<(RobustSolution, CutPool), RobustError> {
    try_solve_robust_seeded(inst, fm, AdversaryKind::LinkBased, opts, seed)
}

/// Builds a pure-tunnel instance (FFC / PCF-TF) with `k` tunnels per demand
/// pair.
pub fn tunnel_instance(topo: &Topology, tm: &TrafficMatrix, k: usize) -> Instance {
    InstanceBuilder::new(topo, tm).tunnels_per_pair(k).build()
}

/// Builds the PCF-LS instance of §5: `k` tunnels per pair plus, for each
/// demand pair, one unconditional LS through the nodes of its shortest path
/// (skipped for adjacent pairs, whose shortest-path LS would be trivial).
///
/// By construction these LSs are topologically sorted — every segment joins
/// physically adjacent routers, and adjacent pairs carry no LS — so the
/// scheme is realizable with local proportional routing (Prop. 7).
pub fn pcf_ls_instance(topo: &Topology, tm: &TrafficMatrix, k: usize) -> Instance {
    let mut b = InstanceBuilder::new(topo, tm).tunnels_per_pair(k);
    for (s, t, _) in tm.positive_pairs() {
        if let Some(path) = pcf_paths::shortest_path(topo, s, t) {
            if path.nodes.len() >= 3 {
                b = b.add_ls(LogicalSequence::always(path.nodes));
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::{fig1_instance, fig3_instance, fig4_ls_instance};
    use crate::objective::Objective;

    fn opts() -> RobustOptions {
        RobustOptions {
            objective: Objective::DemandScale,
            ..RobustOptions::default()
        }
    }

    // ---- Fig. 2 reproduction: Fig. 1 topology, FFC-3 / FFC-4 vs optimal ----

    #[test]
    fn fig2_ffc3_single_failure() {
        let inst = fig1_instance(3);
        let sol = solve_ffc(&inst, &FailureModel::links(1), &opts());
        assert!((sol.objective - 1.5).abs() < 1e-5, "got {}", sol.objective);
    }

    #[test]
    fn fig2_ffc4_single_failure_is_worse() {
        // Adding the fourth tunnel *hurts* FFC: p_st rises from 1 to 2.
        let inst = fig1_instance(4);
        let sol = solve_ffc(&inst, &FailureModel::links(1), &opts());
        assert!((sol.objective - 1.0).abs() < 1e-5, "got {}", sol.objective);
    }

    #[test]
    fn fig2_ffc_two_failures() {
        let sol3 = solve_ffc(&fig1_instance(3), &FailureModel::links(2), &opts());
        assert!(
            (sol3.objective - 0.5).abs() < 1e-5,
            "FFC-3 got {}",
            sol3.objective
        );
        let sol4 = solve_ffc(&fig1_instance(4), &FailureModel::links(2), &opts());
        assert!(sol4.objective.abs() < 1e-6, "FFC-4 got {}", sol4.objective);
    }

    #[test]
    fn fig1_pcf_tf_matches_optimal() {
        // PCF-TF's link-coupled model knows l3 and l4 share 3-t, recovering
        // the full intrinsic capability on Fig. 1 (2 under f=1, 1 under f=2).
        let inst = fig1_instance(4);
        let s1 = solve_pcf_tf(&inst, &FailureModel::links(1), &opts());
        assert!(
            (s1.objective - 2.0).abs() < 1e-5,
            "f=1 got {}",
            s1.objective
        );
        let s2 = solve_pcf_tf(&inst, &FailureModel::links(2), &opts());
        assert!(
            (s2.objective - 1.0).abs() < 1e-5,
            "f=2 got {}",
            s2.objective
        );
    }

    #[test]
    fn fig1_pcf_tf_not_hurt_by_tunnels() {
        // Proposition 2 on a concrete instance: PCF-TF(4 tunnels) >=
        // PCF-TF(3 tunnels).
        let s3 = solve_pcf_tf(&fig1_instance(3), &FailureModel::links(1), &opts());
        let s4 = solve_pcf_tf(&fig1_instance(4), &FailureModel::links(1), &opts());
        assert!(s4.objective >= s3.objective - 1e-6);
    }

    // ---- Fig. 3: tunnel reservations are inherently limited ----

    #[test]
    fn fig3_ffc_reaches_half() {
        let inst = fig3_instance();
        let sol = solve_ffc(&inst, &FailureModel::links(1), &opts());
        // FFC: p_st = 3, one link failure -> 3 tunnel failures; best is 1/2.
        assert!(sol.objective <= 0.5 + 1e-6, "got {}", sol.objective);
    }

    #[test]
    fn fig3_pcf_tf_capped_below_optimal() {
        // Optimal is 2/3 (Fig. 3 discussion); tunnel-based PCF-TF cannot
        // exceed 1/2 (Proposition 3 with n = 2).
        let inst = fig3_instance();
        let sol = solve_pcf_tf(&inst, &FailureModel::links(1), &opts());
        assert!(sol.objective <= 0.5 + 1e-6, "got {}", sol.objective);
        assert!(sol.objective >= 0.5 - 1e-5, "got {}", sol.objective);
    }

    // ---- Fig. 4 / Corollary 3.1: a single LS recovers the optimum ----

    #[test]
    fn fig4_ls_matches_optimal() {
        // p = 4, n = 2, m = 3: optimal under 1 failure = 1 - 1/4 = 0.75.
        let inst = fig4_ls_instance(4, 2, 3);
        let sol = solve_pcf_ls(&inst, &FailureModel::links(1), &opts());
        assert!((sol.objective - 0.75).abs() < 1e-5, "got {}", sol.objective);
    }

    #[test]
    fn fig4_tunnels_only_is_weaker() {
        // Without the LS the same tunnels guarantee at most 1/n = 1/2.
        let (topo, nodes) = crate::figures::fig4_topology(4, 2, 3);
        let mut b =
            crate::instance::InstanceBuilder::with_demands(&topo, vec![(nodes[0], nodes[3], 1.0)]);
        // All simple s0 -> s3 paths as tunnels (p * n * n of them).
        for l0 in topo.links().filter(|&l| topo.link(l).touches(nodes[0])) {
            for l1 in topo
                .links()
                .filter(|&l| topo.link(l).touches(nodes[1]) && topo.link(l).touches(nodes[2]))
            {
                for l2 in topo
                    .links()
                    .filter(|&l| topo.link(l).touches(nodes[2]) && topo.link(l).touches(nodes[3]))
                {
                    b = b.add_tunnel(pcf_paths::Path {
                        nodes: nodes.clone(),
                        links: vec![l0, l1, l2],
                    });
                }
            }
        }
        let inst = b.build();
        assert_eq!(inst.num_tunnels(), 4 * 2 * 2);
        let sol = solve_pcf_tf(&inst, &FailureModel::links(1), &opts());
        assert!(sol.objective <= 0.5 + 1e-5, "got {}", sol.objective);
    }

    // ---- Fig. 5 / Table 1 (tunnel and LS rows) ----

    #[test]
    fn table1_ffc_zero() {
        let inst = crate::figures::fig5_instance(crate::figures::Fig5Variant::TunnelsOnly);
        let sol = solve_ffc(&inst, &FailureModel::links(2), &opts());
        assert!(sol.objective.abs() < 1e-6, "got {}", sol.objective);
    }

    #[test]
    fn table1_pcf_tf_two_thirds() {
        let inst = crate::figures::fig5_instance(crate::figures::Fig5Variant::TunnelsOnly);
        let sol = solve_pcf_tf(&inst, &FailureModel::links(2), &opts());
        assert!(
            (sol.objective - 2.0 / 3.0).abs() < 1e-5,
            "got {}",
            sol.objective
        );
    }

    #[test]
    fn table1_pcf_ls_four_fifths() {
        let inst = crate::figures::fig5_instance(crate::figures::Fig5Variant::UnconditionalLs);
        let sol = solve_pcf_ls(&inst, &FailureModel::links(2), &opts());
        assert!((sol.objective - 0.8).abs() < 1e-5, "got {}", sol.objective);
    }

    #[test]
    fn table1_pcf_cls_optimal() {
        let inst = crate::figures::fig5_instance(crate::figures::Fig5Variant::ConditionalLs);
        let sol = solve_pcf_cls(&inst, &FailureModel::links(2), &opts());
        assert!((sol.objective - 1.0).abs() < 1e-5, "got {}", sol.objective);
    }

    // ---- Zoo smoke test: scheme ordering on a real-size topology ----

    #[test]
    fn sprint_scheme_ordering() {
        let topo = pcf_topology::zoo::build("Sprint");
        let tm = pcf_traffic::gravity(&topo, 3);
        let fm = FailureModel::links(1);
        let o = opts();
        let ffc2 = solve_ffc(&tunnel_instance(&topo, &tm, 2), &fm, &o);
        let tf3 = solve_pcf_tf(&tunnel_instance(&topo, &tm, 3), &fm, &o);
        let ls3 = solve_pcf_ls(&pcf_ls_instance(&topo, &tm, 3), &fm, &o);
        // Proposition 1 (+ LS flexibility): PCF-TF >= FFC at the same tunnel
        // count; here PCF-TF uses 3 tunnels which can only help (Prop. 2).
        let ffc3_inst = tunnel_instance(&topo, &tm, 3);
        let ffc3 = solve_ffc(&ffc3_inst, &fm, &o);
        let tf3b = solve_pcf_tf(&ffc3_inst, &fm, &o);
        assert!(tf3b.objective >= ffc3.objective - 1e-6);
        assert!(ls3.objective >= tf3.objective - 1e-5);
        assert!(ffc2.objective > 0.0);
    }
}
