//! Dense and iterative linear-system solvers.
//!
//! PCF's online failure response (paper §4.1, Propositions 5–6) reduces to
//! solving `M x = d` where `M` is an invertible M-matrix (non-positive
//! off-diagonals, weakly chained diagonally dominant). Two solvers are
//! provided:
//!
//! * [`solve_dense`] — Gaussian elimination with partial pivoting; exact,
//!   `O(n^3)`;
//! * [`solve_gauss_seidel`] — the memory-light iterative method the paper
//!   points at for distributed implementations ("simple and memory-efficient
//!   iterative algorithms for solving linear systems can be used \[4\]");
//!   converges for the M-matrices produced by PCF's reservation matrices.

/// A dense square matrix in row-major order.
#[derive(Debug, Clone)]
pub struct DenseMatrix {
    n: usize,
    a: Vec<f64>,
}

impl DenseMatrix {
    /// Creates an `n x n` zero matrix.
    pub fn zeros(n: usize) -> Self {
        DenseMatrix {
            n,
            a: vec![0.0; n * n],
        }
    }

    /// Dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.a[i * self.n + j]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.a[i * self.n + j] = v;
    }

    /// Adds `v` to element `(i, j)`.
    #[inline]
    pub fn add(&mut self, i: usize, j: usize, v: f64) {
        self.a[i * self.n + j] += v;
    }

    /// `self * x`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n);
        let mut y = vec![0.0; self.n];
        for (i, yi) in y.iter_mut().enumerate() {
            let row = &self.a[i * self.n..(i + 1) * self.n];
            *yi = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
        y
    }
}

/// Error from the linear-system solvers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinSysError {
    /// The matrix is (numerically) singular.
    Singular,
    /// The iterative method did not converge within the iteration budget.
    NoConvergence,
}

impl std::fmt::Display for LinSysError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinSysError::Singular => write!(f, "singular matrix"),
            LinSysError::NoConvergence => write!(f, "iterative solver did not converge"),
        }
    }
}

impl std::error::Error for LinSysError {}

/// Solves `M x = b` for several right-hand sides at once by Gaussian
/// elimination with partial pivoting. Each entry of `rhs` is one column
/// vector; the result has the same shape.
pub fn solve_dense(m: &DenseMatrix, rhs: &[Vec<f64>]) -> Result<Vec<Vec<f64>>, LinSysError> {
    let n = m.n;
    let k = rhs.len();
    for b in rhs {
        assert_eq!(b.len(), n, "rhs dimension mismatch");
    }
    let mut a = m.a.clone();
    let mut bs: Vec<Vec<f64>> = rhs.to_vec();
    // Forward elimination.
    for col in 0..n {
        let mut piv = col;
        let mut best = a[col * n + col].abs();
        for r in (col + 1)..n {
            let v = a[r * n + col].abs();
            if v > best {
                best = v;
                piv = r;
            }
        }
        if best < 1e-13 {
            return Err(LinSysError::Singular);
        }
        if piv != col {
            for j in 0..n {
                a.swap(col * n + j, piv * n + j);
            }
            for b in bs.iter_mut() {
                b.swap(col, piv);
            }
        }
        let d = a[col * n + col];
        for r in (col + 1)..n {
            let f = a[r * n + col] / d;
            if f != 0.0 {
                for j in col..n {
                    a[r * n + j] -= f * a[col * n + j];
                }
                for b in bs.iter_mut() {
                    b[r] -= f * b[col];
                }
            }
        }
    }
    // Back substitution.
    let mut xs = vec![vec![0.0; n]; k];
    for (x, b) in xs.iter_mut().zip(bs.iter()) {
        for i in (0..n).rev() {
            let mut acc = b[i];
            for j in (i + 1)..n {
                acc -= a[i * n + j] * x[j];
            }
            x[i] = acc / a[i * n + i];
        }
    }
    Ok(xs)
}

/// Solves `M x = b` by Gauss–Seidel iteration.
///
/// Converges whenever `M` is an invertible M-matrix (in particular for PCF
/// reservation matrices, Proposition 5). Residual tolerance is relative to
/// `max(1, ||b||_inf)`.
pub fn solve_gauss_seidel(
    m: &DenseMatrix,
    b: &[f64],
    tol: f64,
    max_iters: usize,
) -> Result<Vec<f64>, LinSysError> {
    let n = m.n;
    assert_eq!(b.len(), n);
    let scale = b.iter().fold(1.0f64, |acc, v| acc.max(v.abs()));
    let mut x = vec![0.0; n];
    for i in 0..n {
        if m.get(i, i).abs() < 1e-13 {
            return Err(LinSysError::Singular);
        }
    }
    for _ in 0..max_iters {
        let mut delta: f64 = 0.0;
        for i in 0..n {
            let mut acc = b[i];
            let row = &m.a[i * n..(i + 1) * n];
            for (j, &aij) in row.iter().enumerate() {
                if j != i {
                    acc -= aij * x[j];
                }
            }
            let xi = acc / row[i];
            delta = delta.max((xi - x[i]).abs());
            x[i] = xi;
        }
        // Convergence check on the true residual.
        if delta <= tol * scale {
            let r = m.mul_vec(&x);
            let res = r
                .iter()
                .zip(b)
                .fold(0.0f64, |acc, (ri, bi)| acc.max((ri - bi).abs()));
            if res <= tol * scale {
                return Ok(x);
            }
        }
    }
    Err(LinSysError::NoConvergence)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example_m_matrix() -> DenseMatrix {
        // Diagonally dominant M-matrix.
        let mut m = DenseMatrix::zeros(3);
        m.set(0, 0, 4.0);
        m.set(0, 1, -1.0);
        m.set(0, 2, -1.0);
        m.set(1, 0, -2.0);
        m.set(1, 1, 5.0);
        m.set(1, 2, -1.0);
        m.set(2, 0, -1.0);
        m.set(2, 1, -1.0);
        m.set(2, 2, 3.0);
        m
    }

    #[test]
    fn dense_solves_identity() {
        let mut m = DenseMatrix::zeros(2);
        m.set(0, 0, 1.0);
        m.set(1, 1, 1.0);
        let x = solve_dense(&m, &[vec![3.0, 4.0]]).unwrap();
        assert_eq!(x[0], vec![3.0, 4.0]);
    }

    #[test]
    fn dense_solves_general_system() {
        let m = example_m_matrix();
        let b = vec![1.0, 2.0, 3.0];
        let x = solve_dense(&m, std::slice::from_ref(&b)).unwrap();
        let r = m.mul_vec(&x[0]);
        for (ri, bi) in r.iter().zip(&b) {
            assert!((ri - bi).abs() < 1e-10);
        }
    }

    #[test]
    fn dense_multiple_rhs() {
        let m = example_m_matrix();
        let xs = solve_dense(&m, &[vec![1.0, 0.0, 0.0], vec![0.0, 1.0, 0.0]]).unwrap();
        for (k, x) in xs.iter().enumerate() {
            let r = m.mul_vec(x);
            for (i, ri) in r.iter().enumerate() {
                let want = if i == k { 1.0 } else { 0.0 };
                assert!((ri - want).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn dense_detects_singular() {
        let mut m = DenseMatrix::zeros(2);
        m.set(0, 0, 1.0);
        m.set(0, 1, 2.0);
        m.set(1, 0, 2.0);
        m.set(1, 1, 4.0);
        assert_eq!(
            solve_dense(&m, &[vec![1.0, 1.0]]).unwrap_err(),
            LinSysError::Singular
        );
    }

    #[test]
    fn gauss_seidel_matches_dense_on_m_matrix() {
        let m = example_m_matrix();
        let b = vec![2.0, -1.0, 0.5];
        let exact = solve_dense(&m, std::slice::from_ref(&b)).unwrap();
        let gs = solve_gauss_seidel(&m, &b, 1e-12, 10_000).unwrap();
        for (a, e) in gs.iter().zip(&exact[0]) {
            assert!((a - e).abs() < 1e-9, "gs {a} vs dense {e}");
        }
    }

    #[test]
    fn gauss_seidel_requires_nonzero_diagonal() {
        let mut m = DenseMatrix::zeros(2);
        m.set(0, 1, 1.0);
        m.set(1, 0, 1.0);
        assert_eq!(
            solve_gauss_seidel(&m, &[1.0, 1.0], 1e-9, 100).unwrap_err(),
            LinSysError::Singular
        );
    }

    #[test]
    fn mul_vec_is_matrix_vector_product() {
        let m = example_m_matrix();
        let y = m.mul_vec(&[1.0, 1.0, 1.0]);
        assert_eq!(y, vec![2.0, 2.0, 1.0]);
    }
}
