//! Compressed sparse column (CSC) matrix storage.
//!
//! [`CscMatrix`] is the constraint-matrix container of the revised simplex
//! in [`crate::simplex`]: one contiguous `(rowidx, values)` arena indexed by
//! `colptr`, replacing the former per-column `Vec<Vec<(usize, f64)>>`. The
//! layout keeps every column a contiguous slice pair, which is what the
//! pricing loop, the basis factorization in [`crate::slu`], and the ftran
//! column gathers all iterate over.
//!
//! Columns can be appended at any time (slacks and artificials during
//! standardization, fresh slack/artificial columns per appended row in
//! [`crate::incremental`]). Entries for *appended rows* land in existing
//! columns via [`CscMatrix::append_rows`], a single O(nnz) rebuild per
//! batch of appended rows — warm starts append all rows of a cutting-plane
//! round in one rebuild.
//!
//! Row indices are `u32`: the WAN models top out well below 4 billion rows,
//! and halving the index width keeps the factorization working set smaller.

/// A sparse matrix in compressed sparse column form.
///
/// Entries within a column are stored in ascending row order; duplicate
/// entries within a column are not allowed (the model layer has already
/// summed duplicates).
#[derive(Debug, Clone, Default)]
pub struct CscMatrix {
    nrows: usize,
    colptr: Vec<usize>,
    rowidx: Vec<u32>,
    values: Vec<f64>,
}

impl CscMatrix {
    /// An empty matrix with `nrows` rows and no columns.
    pub fn new(nrows: usize) -> Self {
        CscMatrix {
            nrows,
            colptr: vec![0],
            rowidx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Builds from per-column entry lists (entries need not be sorted).
    pub fn from_cols(nrows: usize, cols: &[Vec<(usize, f64)>]) -> Self {
        let nnz: usize = cols.iter().map(Vec::len).sum();
        let mut m = CscMatrix {
            nrows,
            colptr: Vec::with_capacity(cols.len() + 1),
            rowidx: Vec::with_capacity(nnz),
            values: Vec::with_capacity(nnz),
        };
        m.colptr.push(0);
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        for col in cols {
            scratch.clear();
            scratch.extend_from_slice(col);
            scratch.sort_unstable_by_key(|&(i, _)| i);
            for &(i, v) in &scratch {
                debug_assert!(i < nrows, "row index out of range");
                m.rowidx.push(i as u32);
                m.values.push(v);
            }
            m.colptr.push(m.rowidx.len());
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.colptr.len() - 1
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.rowidx.len()
    }

    /// The (row indices, values) slices of column `j`.
    #[inline]
    pub fn col(&self, j: usize) -> (&[u32], &[f64]) {
        let lo = self.colptr[j];
        let hi = self.colptr[j + 1];
        (&self.rowidx[lo..hi], &self.values[lo..hi])
    }

    /// Iterates column `j` as `(row, value)` pairs.
    #[inline]
    pub fn col_iter(&self, j: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let (rows, vals) = self.col(j);
        rows.iter().zip(vals).map(|(&i, &v)| (i as usize, v))
    }

    /// Appends a column (entries sorted by row internally) and returns its
    /// index.
    pub fn push_col(&mut self, entries: impl IntoIterator<Item = (usize, f64)>) -> usize {
        let start = self.rowidx.len();
        for (i, v) in entries {
            debug_assert!(i < self.nrows, "row index out of range");
            self.rowidx.push(i as u32);
            self.values.push(v);
        }
        // Keep the invariant: ascending row order within the column.
        let mut pairs: Vec<(u32, f64)> = self.rowidx[start..]
            .iter()
            .copied()
            .zip(self.values[start..].iter().copied())
            .collect();
        pairs.sort_unstable_by_key(|&(i, _)| i);
        for (k, (i, v)) in pairs.into_iter().enumerate() {
            self.rowidx[start + k] = i;
            self.values[start + k] = v;
        }
        self.colptr.push(self.rowidx.len());
        self.colptr.len() - 2
    }

    /// Grows the matrix to `new_nrows` rows and inserts `adds` entries
    /// (`(col, row, value)` triples, each `row >= ` the old row count) into
    /// their columns. One O(nnz + adds) rebuild for the whole batch.
    ///
    /// # Panics
    /// Debug-asserts that every added entry references an existing column
    /// and a newly appended row.
    pub fn append_rows(&mut self, new_nrows: usize, adds: &[(usize, usize, f64)]) {
        debug_assert!(new_nrows >= self.nrows);
        self.nrows = new_nrows;
        if adds.is_empty() {
            return;
        }
        let ncols = self.ncols();
        // Count appended entries per column.
        let mut extra = vec![0usize; ncols];
        for &(j, i, _) in adds {
            debug_assert!(j < ncols, "column index out of range");
            debug_assert!(i < new_nrows, "row index out of range");
            extra[j] += 1;
        }
        let mut colptr = Vec::with_capacity(ncols + 1);
        colptr.push(0usize);
        for j in 0..ncols {
            let len = (self.colptr[j + 1] - self.colptr[j]) + extra[j];
            colptr.push(colptr[j] + len);
        }
        let nnz = colptr[ncols];
        let mut rowidx = vec![0u32; nnz];
        let mut values = vec![0.0f64; nnz];
        // Old entries keep their order (sorted, and all below the old row
        // count); appended entries go behind them.
        let mut cursor: Vec<usize> = colptr[..ncols].to_vec();
        for (j, c) in cursor.iter_mut().enumerate() {
            let lo = self.colptr[j];
            let hi = self.colptr[j + 1];
            rowidx[*c..*c + (hi - lo)].copy_from_slice(&self.rowidx[lo..hi]);
            values[*c..*c + (hi - lo)].copy_from_slice(&self.values[lo..hi]);
            *c += hi - lo;
        }
        // `adds` arrive grouped by appended row in ascending order (one
        // batch per warm start), preserving the sorted-column invariant.
        for &(j, i, v) in adds {
            let c = cursor[j];
            debug_assert!(
                c == colptr[j] || rowidx[c - 1] < i as u32,
                "unsorted append"
            );
            rowidx[c] = i as u32;
            values[c] = v;
            cursor[j] += 1;
        }
        self.colptr = colptr;
        self.rowidx = rowidx;
        self.values = values;
    }

    /// Scatters column `j` into the dense buffer `out` (which must be
    /// zeroed by the caller where no entry lands).
    pub fn gather_col(&self, j: usize, out: &mut [f64]) {
        for (i, v) in self.col_iter(j) {
            out[i] = v;
        }
    }

    /// Sparse dot product of column `j` with a dense vector.
    #[inline]
    pub fn col_dot(&self, j: usize, y: &[f64]) -> f64 {
        let (rows, vals) = self.col(j);
        let mut acc = 0.0;
        for (&i, &v) in rows.iter().zip(vals) {
            acc += y[i as usize] * v;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_cols_and_accessors() {
        let cols = vec![vec![(2, 3.0), (0, 1.0)], vec![], vec![(1, -4.0)]];
        let m = CscMatrix::from_cols(3, &cols);
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.ncols(), 3);
        assert_eq!(m.nnz(), 3);
        // Sorted by row within the column.
        let (r0, v0) = m.col(0);
        assert_eq!(r0, &[0, 2]);
        assert_eq!(v0, &[1.0, 3.0]);
        assert_eq!(m.col(1).0.len(), 0);
        assert_eq!(m.col_iter(2).collect::<Vec<_>>(), vec![(1, -4.0)]);
    }

    #[test]
    fn push_col_appends_sorted() {
        let mut m = CscMatrix::new(4);
        let j = m.push_col(vec![(3, 1.0), (0, 2.0)]);
        assert_eq!(j, 0);
        assert_eq!(m.col(0).0, &[0, 3]);
        let j = m.push_col(vec![(1, -1.0)]);
        assert_eq!(j, 1);
        assert_eq!(m.ncols(), 2);
    }

    #[test]
    fn append_rows_inserts_into_existing_columns() {
        let cols = vec![vec![(0, 1.0)], vec![(1, 2.0)]];
        let mut m = CscMatrix::from_cols(2, &cols);
        m.append_rows(4, &[(0, 2, 5.0), (1, 2, 6.0), (0, 3, 7.0)]);
        assert_eq!(m.nrows(), 4);
        assert_eq!(
            m.col_iter(0).collect::<Vec<_>>(),
            vec![(0, 1.0), (2, 5.0), (3, 7.0)]
        );
        assert_eq!(m.col_iter(1).collect::<Vec<_>>(), vec![(1, 2.0), (2, 6.0)]);
    }

    #[test]
    fn col_dot_matches_dense() {
        let cols = vec![vec![(0, 1.0), (2, 3.0)]];
        let m = CscMatrix::from_cols(3, &cols);
        assert_eq!(m.col_dot(0, &[2.0, 100.0, -1.0]), 2.0 - 3.0);
    }
}
