//! Dense and iterative linear-system solvers.
//!
//! PCF's online failure response (paper §4.1, Propositions 5–6) reduces to
//! solving `M x = d` where `M` is an invertible M-matrix (non-positive
//! off-diagonals, weakly chained diagonally dominant). Two solvers are
//! provided:
//!
//! * [`lu_factor`] / [`LuFactors`] — Gaussian elimination with partial
//!   pivoting, split into a reusable `O(n^3)` factorization and `O(n^2)`
//!   per-right-hand-side solves (the replay engine caches the factors per
//!   failure state and amortizes them over a whole event trace);
//! * [`solve_dense`] — factor-then-solve in one call; exact, `O(n^3)`;
//! * [`solve_gauss_seidel`] — the memory-light iterative method the paper
//!   points at for distributed implementations ("simple and memory-efficient
//!   iterative algorithms for solving linear systems can be used \[4\]");
//!   converges for the M-matrices produced by PCF's reservation matrices.

/// A dense square matrix in row-major order.
#[derive(Debug, Clone)]
pub struct DenseMatrix {
    n: usize,
    a: Vec<f64>,
}

impl DenseMatrix {
    /// Creates an `n x n` zero matrix.
    pub fn zeros(n: usize) -> Self {
        DenseMatrix {
            n,
            a: vec![0.0; n * n],
        }
    }

    /// Dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.a[i * self.n + j]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.a[i * self.n + j] = v;
    }

    /// Adds `v` to element `(i, j)`.
    #[inline]
    pub fn add(&mut self, i: usize, j: usize, v: f64) {
        self.a[i * self.n + j] += v;
    }

    /// `self * x`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n);
        let mut y = vec![0.0; self.n];
        for (i, yi) in y.iter_mut().enumerate() {
            let row = &self.a[i * self.n..(i + 1) * self.n];
            *yi = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
        y
    }
}

/// Error from the linear-system solvers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinSysError {
    /// The matrix is (numerically) singular.
    Singular,
    /// The iterative method did not converge within the iteration budget.
    NoConvergence,
}

impl std::fmt::Display for LinSysError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinSysError::Singular => write!(f, "singular matrix"),
            LinSysError::NoConvergence => write!(f, "iterative solver did not converge"),
        }
    }
}

impl std::error::Error for LinSysError {}

/// A reusable LU factorization of a [`DenseMatrix`] with partial pivoting
/// (`P M = L U`, unit-diagonal `L` stored below the diagonal in place).
///
/// Factoring costs `O(n^3)` once; each [`LuFactors::solve`] is `O(n^2)`.
/// A solve through the factors performs exactly the same floating-point
/// operations as [`solve_dense`] on the original matrix, so cached and
/// from-scratch solves of the same system agree bit for bit.
#[derive(Debug, Clone)]
pub struct LuFactors {
    n: usize,
    /// Row-major in-place LU: `U` on and above the diagonal, the `L`
    /// multipliers below it.
    lu: Vec<f64>,
    /// `piv[col]` is the row swapped with `col` at elimination step `col`.
    piv: Vec<usize>,
}

/// Factors `m` by Gaussian elimination with partial pivoting.
pub fn lu_factor(m: &DenseMatrix) -> Result<LuFactors, LinSysError> {
    let n = m.n;
    let mut a = m.a.clone();
    let mut piv = vec![0usize; n];
    for col in 0..n {
        let mut p = col;
        let mut best = a[col * n + col].abs();
        for r in (col + 1)..n {
            let v = a[r * n + col].abs();
            if v > best {
                best = v;
                p = r;
            }
        }
        if best < 1e-13 {
            return Err(LinSysError::Singular);
        }
        piv[col] = p;
        if p != col {
            for j in 0..n {
                a.swap(col * n + j, p * n + j);
            }
        }
        let d = a[col * n + col];
        for r in (col + 1)..n {
            let f = a[r * n + col] / d;
            a[r * n + col] = f;
            if crate::float::nonzero(f) {
                for j in (col + 1)..n {
                    a[r * n + j] -= f * a[col * n + j];
                }
            }
        }
    }
    Ok(LuFactors { n, lu: a, piv })
}

impl LuFactors {
    /// Dimension of the factored matrix.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Solves `M x = b` using the retained factors (`O(n^2)`).
    ///
    /// Both substitutions walk each row contiguously so the inner loops
    /// stay bounds-check-free and vectorizable; for any fixed row the
    /// multiplier updates still fold in column-ascending order against
    /// already-final entries, so the result matches a column-order sweep.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        // audit:allow(panic-reachability, dimension guard; every caller passes an rhs sized by the factored matrix)
        assert_eq!(b.len(), self.n, "rhs dimension mismatch");
        let n = self.n;
        let mut x = b.to_vec();
        // Apply the pivot row swaps (P b), then L y = P b.
        for col in 0..n {
            x.swap(col, self.piv[col]);
        }
        for r in 1..n {
            let row = &self.lu[r * n..r * n + r];
            let (solved, rest) = x.split_at_mut(r);
            let mut acc = rest[0];
            for (f, xc) in row.iter().zip(solved.iter()) {
                acc -= f * xc;
            }
            rest[0] = acc;
        }
        // Back substitution (U x = y).
        for i in (0..n).rev() {
            let row = &self.lu[i * n..(i + 1) * n];
            let mut acc = x[i];
            for (f, xj) in row[i + 1..].iter().zip(x[i + 1..].iter()) {
                acc -= f * xj;
            }
            x[i] = acc / row[i];
        }
        x
    }
}

/// Solves `M x = b` for several right-hand sides at once: one LU
/// factorization shared across all of them. Each entry of `rhs` is one
/// column vector; the result has the same shape.
pub fn solve_dense(m: &DenseMatrix, rhs: &[Vec<f64>]) -> Result<Vec<Vec<f64>>, LinSysError> {
    for b in rhs {
        // audit:allow(panic-reachability, dimension guard; every caller passes rhs columns sized by the matrix)
        assert_eq!(b.len(), m.n, "rhs dimension mismatch");
    }
    let lu = lu_factor(m)?;
    Ok(rhs.iter().map(|b| lu.solve(b)).collect())
}

/// Solves `M x = b` by Gauss–Seidel iteration.
///
/// Converges whenever `M` is an invertible M-matrix (in particular for PCF
/// reservation matrices, Proposition 5). Residual tolerance is relative to
/// `max(1, ||b||_inf)`.
pub fn solve_gauss_seidel(
    m: &DenseMatrix,
    b: &[f64],
    tol: f64,
    max_iters: usize,
) -> Result<Vec<f64>, LinSysError> {
    let n = m.n;
    assert_eq!(b.len(), n);
    let scale = b.iter().fold(1.0f64, |acc, v| acc.max(v.abs()));
    let mut x = vec![0.0; n];
    for i in 0..n {
        if m.get(i, i).abs() < 1e-13 {
            return Err(LinSysError::Singular);
        }
    }
    for _ in 0..max_iters {
        let mut delta: f64 = 0.0;
        for i in 0..n {
            let mut acc = b[i];
            let row = &m.a[i * n..(i + 1) * n];
            for (j, &aij) in row.iter().enumerate() {
                if j != i {
                    acc -= aij * x[j];
                }
            }
            let xi = acc / row[i];
            delta = delta.max((xi - x[i]).abs());
            x[i] = xi;
        }
        // Convergence check on the true residual.
        if delta <= tol * scale {
            let r = m.mul_vec(&x);
            let res = r
                .iter()
                .zip(b)
                .fold(0.0f64, |acc, (ri, bi)| acc.max((ri - bi).abs()));
            if res <= tol * scale {
                return Ok(x);
            }
        }
    }
    Err(LinSysError::NoConvergence)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example_m_matrix() -> DenseMatrix {
        // Diagonally dominant M-matrix.
        let mut m = DenseMatrix::zeros(3);
        m.set(0, 0, 4.0);
        m.set(0, 1, -1.0);
        m.set(0, 2, -1.0);
        m.set(1, 0, -2.0);
        m.set(1, 1, 5.0);
        m.set(1, 2, -1.0);
        m.set(2, 0, -1.0);
        m.set(2, 1, -1.0);
        m.set(2, 2, 3.0);
        m
    }

    #[test]
    fn dense_solves_identity() {
        let mut m = DenseMatrix::zeros(2);
        m.set(0, 0, 1.0);
        m.set(1, 1, 1.0);
        let x = solve_dense(&m, &[vec![3.0, 4.0]]).unwrap();
        assert_eq!(x[0], vec![3.0, 4.0]);
    }

    #[test]
    fn dense_solves_general_system() {
        let m = example_m_matrix();
        let b = vec![1.0, 2.0, 3.0];
        let x = solve_dense(&m, std::slice::from_ref(&b)).unwrap();
        let r = m.mul_vec(&x[0]);
        for (ri, bi) in r.iter().zip(&b) {
            assert!((ri - bi).abs() < 1e-10);
        }
    }

    #[test]
    fn dense_multiple_rhs() {
        let m = example_m_matrix();
        let xs = solve_dense(&m, &[vec![1.0, 0.0, 0.0], vec![0.0, 1.0, 0.0]]).unwrap();
        for (k, x) in xs.iter().enumerate() {
            let r = m.mul_vec(x);
            for (i, ri) in r.iter().enumerate() {
                let want = if i == k { 1.0 } else { 0.0 };
                assert!((ri - want).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn dense_detects_singular() {
        let mut m = DenseMatrix::zeros(2);
        m.set(0, 0, 1.0);
        m.set(0, 1, 2.0);
        m.set(1, 0, 2.0);
        m.set(1, 1, 4.0);
        assert_eq!(
            solve_dense(&m, &[vec![1.0, 1.0]]).unwrap_err(),
            LinSysError::Singular
        );
    }

    #[test]
    fn lu_solve_is_bit_identical_to_solve_dense() {
        let m = example_m_matrix();
        let lu = lu_factor(&m).unwrap();
        for b in [vec![1.0, 2.0, 3.0], vec![-0.5, 0.0, 7.25]] {
            let dense = solve_dense(&m, std::slice::from_ref(&b)).unwrap();
            let fast = lu.solve(&b);
            for (a, e) in fast.iter().zip(&dense[0]) {
                assert_eq!(a.to_bits(), e.to_bits(), "lu {a} vs dense {e}");
            }
        }
    }

    #[test]
    fn lu_factors_are_reusable_across_rhs() {
        // A matrix that needs pivoting (zero leading diagonal entry).
        let mut m = DenseMatrix::zeros(3);
        m.set(0, 0, 0.0);
        m.set(0, 1, 2.0);
        m.set(0, 2, 1.0);
        m.set(1, 0, 1.0);
        m.set(1, 1, 1.0);
        m.set(1, 2, 1.0);
        m.set(2, 0, 4.0);
        m.set(2, 1, -1.0);
        m.set(2, 2, 0.5);
        let lu = lu_factor(&m).unwrap();
        assert_eq!(lu.n(), 3);
        for k in 0..3 {
            let mut b = vec![0.0; 3];
            b[k] = 1.0;
            let x = lu.solve(&b);
            let r = m.mul_vec(&x);
            for (i, ri) in r.iter().enumerate() {
                let want = if i == k { 1.0 } else { 0.0 };
                assert!((ri - want).abs() < 1e-10, "column {k}, row {i}: {ri}");
            }
        }
    }

    #[test]
    fn lu_factor_detects_singular() {
        let mut m = DenseMatrix::zeros(2);
        m.set(0, 0, 1.0);
        m.set(0, 1, 2.0);
        m.set(1, 0, 2.0);
        m.set(1, 1, 4.0);
        assert_eq!(lu_factor(&m).unwrap_err(), LinSysError::Singular);
    }

    #[test]
    fn gauss_seidel_matches_dense_on_m_matrix() {
        let m = example_m_matrix();
        let b = vec![2.0, -1.0, 0.5];
        let exact = solve_dense(&m, std::slice::from_ref(&b)).unwrap();
        let gs = solve_gauss_seidel(&m, &b, 1e-12, 10_000).unwrap();
        for (a, e) in gs.iter().zip(&exact[0]) {
            assert!((a - e).abs() < 1e-9, "gs {a} vs dense {e}");
        }
    }

    #[test]
    fn gauss_seidel_requires_nonzero_diagonal() {
        let mut m = DenseMatrix::zeros(2);
        m.set(0, 1, 1.0);
        m.set(1, 0, 1.0);
        assert_eq!(
            solve_gauss_seidel(&m, &[1.0, 1.0], 1e-9, 100).unwrap_err(),
            LinSysError::Singular
        );
    }

    #[test]
    fn mul_vec_is_matrix_vector_product() {
        let m = example_m_matrix();
        let y = m.mul_vec(&[1.0, 1.0, 1.0]);
        assert_eq!(y, vec![2.0, 2.0, 1.0]);
    }
}
