//! Per-pair worst-case separation oracles.
//!
//! Given candidate reservations, the adversary finds the failure scenario in
//! the (relaxed) targeted set that minimizes the capacity available to one
//! pair. Two oracles implement the two failure-set models of the paper:
//!
//! * [`worst_case_ffc`] — FFC's tunnel-count set `Y0` (Eq. 5):
//!   `Σ_l y_l <= f · p_st`, solved combinatorially (fail the `f·p_st`
//!   largest reservations);
//! * [`worst_case_link`] — PCF's link-coupled set (Eq. 4) extended with
//!   conditional activation variables `h_q` (§3.4, appendix), solved as a
//!   small LP per pair. Link-failure variables are relaxed to `[0,1]`
//!   exactly as the paper prescribes.
//!
//! Both return the scenario achieving the bound so the caller can emit a
//! cutting plane.

use crate::failure::{Condition, FailureModel};
use crate::instance::{Instance, LsId, PairId};
use pcf_lp::{LpProblem, Sense, SimplexOptions, Status, VarId};
use std::fmt;

/// Structured failure from a worst-case oracle.
///
/// The adversary LPs are tiny box-constrained problems that are optimal by
/// construction, so any of these indicates a modeling or numerical bug —
/// but callers (the cutting-plane engine, the serving daemon) want to
/// surface that as a value, not an abort.
#[derive(Debug, Clone, PartialEq)]
pub enum AdversaryError {
    /// The LP layer rejected the adversary problem structurally.
    Lp(pcf_lp::SolveError),
    /// The adversary LP finished without optimality.
    NotOptimal(Status),
    /// An internal indexing invariant was broken.
    Internal(&'static str),
}

impl fmt::Display for AdversaryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdversaryError::Lp(e) => write!(f, "adversary LP rejected: {e}"),
            AdversaryError::NotOptimal(status) => {
                write!(f, "adversary LP not optimal: {status}")
            }
            AdversaryError::Internal(what) => write!(f, "adversary invariant broken: {what}"),
        }
    }
}

impl std::error::Error for AdversaryError {}

/// A worst-case scenario for one pair: the availability bound and the
/// (possibly fractional) failure/activation levels achieving it.
#[derive(Debug, Clone)]
pub struct WorstCase {
    /// `min over scenarios` of
    /// `Σ_l a_l (1 - y_l) + Σ_{q∈L} b_q h_q - Σ_{q'∈Q} b_{q'} h_{q'}`.
    pub available: f64,
    /// `y_l` per tunnel of the pair (order matches `inst.tunnels_of(p)`).
    pub y: Vec<f64>,
    /// `h_q` per LS in `L(p)` (order matches `inst.lss_of(p)`).
    pub h_l: Vec<f64>,
    /// `h_q'` per LS in `Q(p)` (order matches `inst.segments_of(p)`).
    pub h_q: Vec<f64>,
}

/// FFC's worst case (Eq. 5): up to `f · p_st` of the pair's tunnels fail.
///
/// The relaxed LP over `{0 <= y <= 1, Σ y <= f·p_st}` attains its optimum by
/// failing the largest reservations, so this is exact and combinatorial.
///
/// # Panics
/// Panics if the instance contains logical sequences — FFC is a pure tunnel
/// scheme.
pub fn worst_case_ffc(inst: &Instance, p: PairId, fm: &FailureModel, a: &[f64]) -> WorstCase {
    assert_eq!(inst.num_lss(), 0, "FFC does not support logical sequences");
    let tunnels = inst.tunnels_of(p);
    let p_st = inst.p_st(p);
    let k = (fm.budget() * p_st).min(tunnels.len());
    // Indices of the k largest reservations.
    let mut order: Vec<usize> = (0..tunnels.len()).collect();
    order.sort_by(|&i, &j| a[tunnels[j].0].total_cmp(&a[tunnels[i].0]).then(i.cmp(&j)));
    let mut y = vec![0.0; tunnels.len()];
    let mut lost = 0.0;
    for &i in order.iter().take(k) {
        y[i] = 1.0;
        lost += a[tunnels[i].0];
    }
    let total: f64 = tunnels.iter().map(|l| a[l.0]).sum();
    WorstCase {
        available: total - lost,
        y,
        h_l: Vec::new(),
        h_q: Vec::new(),
    }
}

/// PCF's worst case for one pair: the LP relaxation of Eq. 4 (optionally
/// with group budgets, §3.5) plus condition variables for the pair's
/// logical sequences.
///
/// Maximizes the *loss*
/// `Σ_l a_l y_l - Σ_{q∈L} b_q h_q + Σ_{q'∈Q} b_{q'} h_{q'}` over
///
/// ```text
/// Σ_e x_e <= f     (or group budget with x_e tied to group indicators)
/// y_l <= Σ_{e∈τ_l} x_e,   0 <= y_l <= 1,   0 <= x_e <= 1
/// h_q as dictated by each condition (appendix linearization)
/// ```
///
/// and returns availability `Σ_l a_l + Σ_{q∈L,const} ... - loss` expressed
/// directly as [`WorstCase`].
pub fn worst_case_link(
    inst: &Instance,
    p: PairId,
    fm: &FailureModel,
    a: &[f64],
    b: &[f64],
) -> Result<WorstCase, AdversaryError> {
    Ok(worst_case_link_with_extras(inst, p, fm, a, b, &[])?.0)
}

/// An additional `coef * h(condition)` term in the adversary's loss
/// objective, used by the logical-flow model where flow reservations and
/// segment obligations are conditioned the same way as LSs.
#[derive(Debug, Clone)]
pub struct ExtraTerm {
    /// Loss coefficient: negative for reservations available to the pair,
    /// positive for obligations the pair must carry.
    pub coef: f64,
    /// Activation condition of the term.
    pub condition: Condition,
}

/// The adversary's failure-polytope variables: per-link failure levels
/// `x_e ∈ [0,1]`, plus — under a degradation polytope — per-link fractional
/// capacity drops `d_e ∈ [0, 1 − α_e]` for links with room to drop.
pub(crate) struct PolytopeVars {
    /// Per-link relaxed failure indicator.
    pub xs: Vec<VarId>,
    /// Per-link degradation drop (None when the link cannot degrade).
    pub ds: Vec<Option<VarId>>,
}

/// Adds the relaxed failure polytope variables (`x_e`, group indicators,
/// degradation drops) to `lp` and returns them.
///
/// Degradation drops enter only the tunnel rows (`y_l ≤ Σ_{e∈τ_l} x_e + d_e`):
/// a degraded link is alive, so conditions stay functions of `x` alone, and
/// the linear per-tunnel loss `a_l · Σ d_e` over-estimates the realized
/// multiplicative loss `a_l (1 − Π (1 − d_e))` — the cut is conservative.
pub(crate) fn add_failure_polytope(
    lp: &mut LpProblem,
    topo: &pcf_topology::Topology,
    fm: &FailureModel,
) -> Result<PolytopeVars, AdversaryError> {
    let xs: Vec<VarId> = topo.links().map(|_| lp.add_var(0.0, 1.0, 0.0)).collect();
    let mut ds: Vec<Option<VarId>> = vec![None; topo.link_count()];
    match fm {
        FailureModel::Links { f } => {
            lp.add_le(xs.iter().map(|&x| (x, 1.0)), *f as f64);
        }
        FailureModel::Groups { groups, f } => {
            let gs: Vec<VarId> = groups.iter().map(|_| lp.add_var(0.0, 1.0, 0.0)).collect();
            lp.add_le(gs.iter().map(|&g| (g, 1.0)), *f as f64);
            // x_e >= g for every group containing e; x_e <= sum of groups
            // containing e.
            for l in topo.links() {
                let mut covering = Vec::new();
                for (gi, group) in groups.iter().enumerate() {
                    if group.contains(&l) {
                        lp.add_ge(vec![(xs[l.index()], 1.0), (gs[gi], -1.0)], 0.0);
                        covering.push((gs[gi], 1.0));
                    }
                }
                covering.push((xs[l.index()], -1.0));
                lp.add_ge(covering, 0.0);
            }
        }
        FailureModel::Structured {
            budgets,
            degradation,
        } => {
            // Each budget contributes its own group indicators and Σ g ≤ f
            // row; a link's x is bounded by the union of covering groups
            // across all budgets (x ≤ 0 for uncovered links).
            let mut covering: Vec<Vec<(VarId, f64)>> = vec![Vec::new(); topo.link_count()];
            for b in budgets {
                let gs: Vec<VarId> = b.groups.iter().map(|_| lp.add_var(0.0, 1.0, 0.0)).collect();
                lp.add_le(gs.iter().map(|&g| (g, 1.0)), b.f as f64);
                for (gi, group) in b.groups.iter().enumerate() {
                    for l in group {
                        lp.add_ge(vec![(xs[l.index()], 1.0), (gs[gi], -1.0)], 0.0);
                        covering[l.index()].push((gs[gi], 1.0));
                    }
                }
            }
            for l in topo.links() {
                let mut row = covering[l.index()].clone();
                row.push((xs[l.index()], -1.0));
                lp.add_ge(row, 0.0);
            }
            if let Some(deg) = degradation {
                let mut budget_row = Vec::new();
                for l in topo.links() {
                    let room = (1.0 - deg.floor[l.index()]).max(0.0);
                    if room > 0.0 {
                        let d = lp.add_var(0.0, room, 0.0);
                        ds[l.index()] = Some(d);
                        budget_row.push((d, 1.0));
                    }
                }
                if let Some(g) = deg.budget {
                    lp.add_le(budget_row, g);
                }
            }
        }
        FailureModel::Explicit { .. } => {
            return Err(AdversaryError::Internal(
                "explicit scenario lists use the combinatorial adversary",
            ));
        }
    }
    Ok(PolytopeVars { xs, ds })
}

/// Adds an `h` variable tied to `condition` (appendix linearization) with
/// the given objective coefficient.
pub(crate) fn add_condition_var(
    lp: &mut LpProblem,
    xs: &[VarId],
    condition: &Condition,
    obj: f64,
) -> VarId {
    let h = lp.add_var(0.0, 1.0, obj);
    match condition {
        Condition::Always => {
            lp.add_eq(vec![(h, 1.0)], 1.0);
        }
        Condition::LinkDead(e) => {
            lp.add_eq(vec![(h, 1.0), (xs[e.index()], -1.0)], 0.0);
        }
        Condition::AliveDead { alive, dead } => {
            for e in alive {
                lp.add_le(vec![(h, 1.0), (xs[e.index()], 1.0)], 1.0);
            }
            for e in dead {
                lp.add_le(vec![(h, 1.0), (xs[e.index()], -1.0)], 0.0);
            }
            // h >= 1 - Σ_alive x - Σ_dead (1 - x)
            let mut row = vec![(h, 1.0)];
            for e in alive {
                row.push((xs[e.index()], 1.0));
            }
            for e in dead {
                row.push((xs[e.index()], -1.0));
            }
            lp.add_ge(row, 1.0 - dead.len() as f64);
        }
    }
    h
}

/// [`worst_case_link`] extended with arbitrary conditioned loss terms.
/// Returns the worst case plus the achieved `h` value of every extra term
/// (in input order).
pub fn worst_case_link_with_extras(
    inst: &Instance,
    p: PairId,
    fm: &FailureModel,
    a: &[f64],
    b: &[f64],
    extras: &[ExtraTerm],
) -> Result<(WorstCase, Vec<f64>), AdversaryError> {
    if let FailureModel::Explicit { .. } = fm {
        return worst_case_explicit(inst, p, fm, a, b, extras);
    }
    let topo = inst.topo();
    let tunnels = inst.tunnels_of(p);
    let ls_l = inst.lss_of(p);
    let ls_q = inst.segments_of(p);

    let mut lp = LpProblem::new(Sense::Maximize);
    let opts = SimplexOptions {
        scale: false, // tiny, well-scaled problems; skip the overhead
        ..SimplexOptions::default()
    };
    lp.set_options(opts);

    let pv = add_failure_polytope(&mut lp, topo, fm)?;
    let xs = &pv.xs;

    // y_l per tunnel of this pair, objective +a_l. Degradation drops count
    // toward a tunnel's loss the same way failures do (a link at fraction
    // 1 − d contributes d of the tunnel's reservation to the loss).
    let ys: Vec<VarId> = tunnels
        .iter()
        .map(|&l| lp.add_var(0.0, 1.0, a[l.0].max(0.0)))
        .collect();
    for (yi, &l) in ys.iter().zip(tunnels) {
        let mut row: Vec<(VarId, f64)> = vec![(*yi, 1.0)];
        for link in &inst.tunnel(l).links {
            row.push((xs[link.index()], -1.0));
            if let Some(d) = pv.ds[link.index()] {
                row.push((d, -1.0));
            }
        }
        lp.add_le(row, 0.0);
    }

    // h_q variables: coefficient -b for q in L(p), +b for q in Q(p)
    // (the same LS may appear on both sides; coefficients accumulate).
    let mut h_coef: std::collections::HashMap<LsId, f64> = std::collections::HashMap::new();
    for &q in ls_l {
        *h_coef.entry(q).or_insert(0.0) -= b[q.0];
    }
    for &q in ls_q {
        *h_coef.entry(q).or_insert(0.0) += b[q.0];
    }
    let mut h_vars: Vec<(LsId, VarId)> = Vec::new();
    for (&q, &coef) in &h_coef {
        let h = add_condition_var(&mut lp, xs, &inst.ls(q).condition, coef);
        h_vars.push((q, h));
    }

    // Extra conditioned terms (logical-flow reservations/obligations).
    let extra_vars: Vec<VarId> = extras
        .iter()
        .map(|t| add_condition_var(&mut lp, xs, &t.condition, t.coef))
        .collect();

    let sol = lp.solve().map_err(AdversaryError::Lp)?;
    if sol.status != Status::Optimal {
        // The polytope is a bounded box, so anything but Optimal is a bug
        // in the LP layer; report it instead of aborting the caller.
        return Err(AdversaryError::NotOptimal(sol.status));
    }

    let y: Vec<f64> = ys.iter().map(|&v| sol.value(v).clamp(0.0, 1.0)).collect();
    let h_of = |q: LsId| -> Result<f64, AdversaryError> {
        h_vars
            .iter()
            .find(|(qq, _)| *qq == q)
            .map(|&(_, v)| sol.value(v).clamp(0.0, 1.0))
            .ok_or(AdversaryError::Internal(
                "referenced LS is missing its h variable",
            ))
    };
    let h_l: Vec<f64> = ls_l.iter().map(|&q| h_of(q)).collect::<Result<_, _>>()?;
    let h_q: Vec<f64> = ls_q.iter().map(|&q| h_of(q)).collect::<Result<_, _>>()?;
    let h_extra: Vec<f64> = extra_vars
        .iter()
        .map(|&v| sol.value(v).clamp(0.0, 1.0))
        .collect();

    let total_a: f64 = tunnels.iter().map(|l| a[l.0]).sum();
    // available = Σ a_l (1 - y_l) + Σ_L b h - Σ_Q b h - extras = Σ a_l - loss
    let available = total_a - sol.objective;
    Ok((
        WorstCase {
            available,
            y,
            h_l,
            h_q,
        },
        h_extra,
    ))
}

/// Exact (integral) worst case over an explicit scenario list: evaluate the
/// availability under every enumerated scenario — plus the implied
/// no-failure scenario — and return the minimum. No relaxation is involved,
/// so allocations designed this way are exactly as resilient as the list
/// demands.
/// Best scenario found so far: `(available, y, h over L(p), h over Q(p), x)`.
type ExplicitBest = (f64, Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>);

fn worst_case_explicit(
    inst: &Instance,
    p: PairId,
    fm: &FailureModel,
    a: &[f64],
    b: &[f64],
    extras: &[ExtraTerm],
) -> Result<(WorstCase, Vec<f64>), AdversaryError> {
    let topo = inst.topo();
    let tunnels = inst.tunnels_of(p);
    let ls_l = inst.lss_of(p);
    let ls_q = inst.segments_of(p);
    let mut masks = fm.enumerate_scenarios(topo);
    masks.push(vec![false; topo.link_count()]); // the no-failure scenario

    let mut best: Option<ExplicitBest> = None;
    for mask in &masks {
        let y: Vec<f64> = tunnels
            .iter()
            .map(|&l| {
                let dead = inst.tunnel(l).links.iter().any(|e| mask[e.index()]);
                if dead {
                    1.0
                } else {
                    0.0
                }
            })
            .collect();
        let hv = |q: &crate::instance::LsId| -> f64 {
            if inst.ls(*q).condition.holds(mask) {
                1.0
            } else {
                0.0
            }
        };
        let h_l: Vec<f64> = ls_l.iter().map(&hv).collect();
        let h_q: Vec<f64> = ls_q.iter().map(hv).collect();
        let h_extra: Vec<f64> = extras
            .iter()
            .map(|t| if t.condition.holds(mask) { 1.0 } else { 0.0 })
            .collect();
        let mut avail = 0.0;
        for (i, &l) in tunnels.iter().enumerate() {
            avail += a[l.0] * (1.0 - y[i]);
        }
        for (i, &q) in ls_l.iter().enumerate() {
            avail += b[q.0] * h_l[i];
        }
        for (i, &q) in ls_q.iter().enumerate() {
            avail -= b[q.0] * h_q[i];
        }
        for (t, h) in extras.iter().zip(&h_extra) {
            avail -= t.coef * h;
        }
        if best.as_ref().is_none_or(|(v, ..)| avail < *v) {
            best = Some((avail, y, h_l, h_q, h_extra));
        }
    }
    let Some((available, y, h_l, h_q, h_extra)) = best else {
        // masks always contains the appended no-failure scenario.
        return Err(AdversaryError::Internal("no scenarios were evaluated"));
    };
    Ok((
        WorstCase {
            available,
            y,
            h_l,
            h_q,
        },
        h_extra,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{InstanceBuilder, LogicalSequence};
    use pcf_topology::{LinkId, NodeId, Topology};

    /// Two disjoint 2-hop paths s-a-t and s-b-t, all capacity 1.
    fn diamond() -> Topology {
        let mut t = Topology::new("diamond");
        let s = t.add_node("s");
        let a = t.add_node("a");
        let b = t.add_node("b");
        let d = t.add_node("t");
        t.add_link(s, a, 1.0); // e0
        t.add_link(a, d, 1.0); // e1
        t.add_link(s, b, 1.0); // e2
        t.add_link(b, d, 1.0); // e3
        t
    }

    #[test]
    fn ffc_worst_case_fails_largest() {
        let topo = diamond();
        let inst = InstanceBuilder::with_demands(&topo, vec![(NodeId(0), NodeId(3), 1.0)])
            .tunnels_per_pair(2)
            .build();
        let p = PairId(0);
        assert_eq!(inst.p_st(p), 1);
        let mut a = vec![0.0; inst.num_tunnels()];
        let ts = inst.tunnels_of(p);
        a[ts[0].0] = 0.7;
        a[ts[1].0] = 0.3;
        let wc = worst_case_ffc(&inst, p, &FailureModel::links(1), &a);
        // One tunnel can fail: the 0.7 one.
        assert!((wc.available - 0.3).abs() < 1e-9);
        assert_eq!(wc.y.iter().filter(|&&y| y > 0.5).count(), 1);
    }

    #[test]
    fn link_worst_case_matches_ffc_on_disjoint_tunnels() {
        let topo = diamond();
        let inst = InstanceBuilder::with_demands(&topo, vec![(NodeId(0), NodeId(3), 1.0)])
            .tunnels_per_pair(2)
            .build();
        let p = PairId(0);
        let mut a = vec![0.0; inst.num_tunnels()];
        let ts = inst.tunnels_of(p);
        a[ts[0].0] = 0.7;
        a[ts[1].0] = 0.3;
        let b = vec![];
        let wc = worst_case_link(&inst, p, &FailureModel::links(1), &a, &b).unwrap();
        // Disjoint tunnels, one link failure kills at most one tunnel.
        assert!((wc.available - 0.3).abs() < 1e-6, "got {}", wc.available);
    }

    #[test]
    fn link_worst_case_two_failures_kill_both() {
        let topo = diamond();
        let inst = InstanceBuilder::with_demands(&topo, vec![(NodeId(0), NodeId(3), 1.0)])
            .tunnels_per_pair(2)
            .build();
        let p = PairId(0);
        let mut a = vec![0.0; inst.num_tunnels()];
        for &l in inst.tunnels_of(p) {
            a[l.0] = 0.5;
        }
        let wc = worst_case_link(&inst, p, &FailureModel::links(2), &a, &[]).unwrap();
        assert!(wc.available.abs() < 1e-6);
    }

    #[test]
    fn always_ls_reservation_survives_failures() {
        let topo = diamond();
        // LS s -> a -> t, always active.
        let inst = InstanceBuilder::with_demands(&topo, vec![(NodeId(0), NodeId(3), 1.0)])
            .tunnels_per_pair(2)
            .add_ls(LogicalSequence::always(vec![
                NodeId(0),
                NodeId(1),
                NodeId(3),
            ]))
            .build();
        let p = inst.pair_id(NodeId(0), NodeId(3)).unwrap();
        let a = vec![0.0; inst.num_tunnels()];
        let b = vec![0.4];
        let wc = worst_case_link(&inst, p, &FailureModel::links(2), &a, &b).unwrap();
        // No tunnel reservations; the LS contributes 0.4 under any scenario.
        assert!((wc.available - 0.4).abs() < 1e-6, "got {}", wc.available);
        assert!((wc.h_l[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn conditional_ls_only_counts_when_link_dead_helps_adversary() {
        let topo = diamond();
        // LS active only when e0 is dead.
        let ls = LogicalSequence {
            hops: vec![NodeId(0), NodeId(2), NodeId(3)],
            condition: Condition::LinkDead(LinkId(0)),
        };
        let inst = InstanceBuilder::with_demands(&topo, vec![(NodeId(0), NodeId(3), 1.0)])
            .tunnels_per_pair(2)
            .add_ls(ls)
            .build();
        let p = inst.pair_id(NodeId(0), NodeId(3)).unwrap();
        // Tunnel reservations: the tunnel through e0 has 0.6, other 0.4.
        let mut a = vec![0.0; inst.num_tunnels()];
        let ts = inst.tunnels_of(p);
        for &l in ts {
            let uses_e0 = inst.tunnel(l).uses(LinkId(0));
            a[l.0] = if uses_e0 { 0.6 } else { 0.4 };
        }
        let b = vec![0.5];
        // Under f=1: failing e0 kills the 0.6 tunnel but activates the LS
        // (+0.5): available = 0.4 + 0.5 = 0.9. Failing e1 kills the 0.6
        // tunnel without activating the LS: available = 0.4. Failing a link
        // of the other path: available = 0.6. Worst = 0.4 (fail e1).
        let wc = worst_case_link(&inst, p, &FailureModel::links(1), &a, &b).unwrap();
        assert!((wc.available - 0.4).abs() < 1e-6, "got {}", wc.available);
    }

    #[test]
    fn segment_obligations_increase_worst_case_load() {
        let topo = diamond();
        // LS s->a->t: segment (s,a) carries the LS reservation.
        let inst = InstanceBuilder::with_demands(&topo, vec![(NodeId(0), NodeId(3), 1.0)])
            .tunnels_per_pair(2)
            .add_ls(LogicalSequence::always(vec![
                NodeId(0),
                NodeId(1),
                NodeId(3),
            ]))
            .build();
        let p_sa = inst.pair_id(NodeId(0), NodeId(1)).unwrap();
        // Segment pair (s,a): tunnels reserve 1.0 total, must carry b = 0.3.
        let mut a = vec![0.0; inst.num_tunnels()];
        for &l in inst.tunnels_of(p_sa) {
            a[l.0] = 0.5;
        }
        let b = vec![0.3];
        let wc = worst_case_link(&inst, p_sa, &FailureModel::links(0), &a, &b).unwrap();
        // No failures: available = 1.0 - 0.3 (obligation) = 0.7.
        assert!((wc.available - 0.7).abs() < 1e-6, "got {}", wc.available);
        assert!((wc.h_q[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn group_budget_kills_whole_group() {
        let topo = diamond();
        let inst = InstanceBuilder::with_demands(&topo, vec![(NodeId(0), NodeId(3), 1.0)])
            .tunnels_per_pair(2)
            .build();
        let p = PairId(0);
        let mut a = vec![0.0; inst.num_tunnels()];
        for &l in inst.tunnels_of(p) {
            a[l.0] = 0.5;
        }
        // One SRLG containing one link of each path: a single group failure
        // kills both tunnels.
        let groups = vec![vec![LinkId(0), LinkId(2)]];
        let fm = FailureModel::Groups { groups, f: 1 };
        let wc = worst_case_link(&inst, p, &fm, &a, &[]).unwrap();
        assert!(wc.available.abs() < 1e-6, "got {}", wc.available);
    }

    #[test]
    fn structured_composes_budgets_like_groups() {
        let topo = diamond();
        let inst = InstanceBuilder::with_demands(&topo, vec![(NodeId(0), NodeId(3), 1.0)])
            .tunnels_per_pair(2)
            .build();
        let p = PairId(0);
        let mut a = vec![0.0; inst.num_tunnels()];
        for &l in inst.tunnels_of(p) {
            a[l.0] = 0.5;
        }
        // One SRLG budget per path: each budget can kill one whole path.
        let fm = crate::failure::FailureModel::structured(vec![
            crate::failure::GroupBudget {
                groups: vec![vec![LinkId(0), LinkId(1)]],
                f: 1,
            },
            crate::failure::GroupBudget {
                groups: vec![vec![LinkId(2), LinkId(3)]],
                f: 1,
            },
        ]);
        let wc = worst_case_link(&inst, p, &fm, &a, &[]).unwrap();
        assert!(wc.available.abs() < 1e-6, "got {}", wc.available);
    }

    #[test]
    fn degradation_polytope_drains_capacity_fraction() {
        use crate::failure::Degradation;
        let topo = diamond();
        let inst = InstanceBuilder::with_demands(&topo, vec![(NodeId(0), NodeId(3), 1.0)])
            .tunnels_per_pair(2)
            .build();
        let p = PairId(0);
        let mut a = vec![0.0; inst.num_tunnels()];
        for &l in inst.tunnels_of(p) {
            a[l.0] = 0.5;
        }
        // No failures, every link may sag to 80% capacity: each 2-hop
        // tunnel loses min(1, 0.2 + 0.2) = 0.4 of its reservation.
        let fm = FailureModel::structured(Vec::new())
            .with_degradation(&topo, Degradation::uniform(topo.link_count(), 0.8));
        let wc = worst_case_link(&inst, p, &fm, &a, &[]).unwrap();
        assert!((wc.available - 0.6).abs() < 1e-6, "got {}", wc.available);

        // A total drop budget of 0.2 can only hurt one (disjoint) path.
        let fm2 = FailureModel::structured(Vec::new()).with_degradation(
            &topo,
            Degradation::uniform(topo.link_count(), 0.8).with_budget(0.2),
        );
        let wc2 = worst_case_link(&inst, p, &fm2, &a, &[]).unwrap();
        assert!((wc2.available - 0.9).abs() < 1e-6, "got {}", wc2.available);
    }
}
