//! The paper's worked examples: topologies, tunnels, and logical sequences
//! of Figures 1, 3, 4, and 5.
//!
//! These fixtures drive the reproduction of Fig. 2 and Table 1 and the
//! proposition tests. Where the figure is ambiguous in prose, the link
//! capacities are chosen so that every number the paper states is
//! reproduced exactly (verified in `tests/paper_examples.rs`).

use crate::failure::Condition;
use crate::instance::{Instance, InstanceBuilder, LogicalSequence};
use pcf_paths::Path;
use pcf_topology::{LinkId, NodeId, Topology};

/// Node handles of the Fig. 1 example.
#[derive(Debug, Clone, Copy)]
pub struct Fig1 {
    /// Source.
    pub s: NodeId,
    /// Intermediate routers 1–4.
    pub r: [NodeId; 4],
    /// Destination.
    pub t: NodeId,
}

/// Fig. 1 topology: routers s, 1..4, t.
///
/// Solid links (capacity 1): s-1, 1-t, s-2, 2-t, s-3, 3-t.
/// Dashed links (capacity 1/2): s-4, 4-3.
pub fn fig1_topology() -> (Topology, Fig1) {
    let mut topo = Topology::new("fig1");
    let s = topo.add_node("s");
    let r1 = topo.add_node("1");
    let r2 = topo.add_node("2");
    let r3 = topo.add_node("3");
    let r4 = topo.add_node("4");
    let t = topo.add_node("t");
    topo.add_link(s, r1, 1.0);
    topo.add_link(r1, t, 1.0);
    topo.add_link(s, r2, 1.0);
    topo.add_link(r2, t, 1.0);
    topo.add_link(s, r3, 1.0);
    topo.add_link(r3, t, 1.0);
    topo.add_link(s, r4, 0.5);
    topo.add_link(r4, r3, 0.5);
    (
        topo,
        Fig1 {
            s,
            r: [r1, r2, r3, r4],
            t,
        },
    )
}

/// Builds a [`Path`] through the listed nodes, resolving each hop to the
/// (first) link between consecutive nodes.
///
/// # Panics
/// Panics if two consecutive nodes are not adjacent.
pub fn path_through(topo: &Topology, nodes: &[NodeId]) -> Path {
    assert!(nodes.len() >= 2);
    let mut links = Vec::new();
    for w in nodes.windows(2) {
        let l = topo
            .incident(w[0])
            .iter()
            .find(|&&(v, _)| v == w[1])
            .map(|&(_, l)| l)
            // audit:allow(no-panic-paths, documented contract; figure builders pass literally adjacent hops from the fixture topologies)
            .unwrap_or_else(|| panic!("nodes {} and {} are not adjacent", w[0], w[1]));
        links.push(l);
    }
    Path {
        nodes: nodes.to_vec(),
        links,
    }
}

/// The four tunnels of Fig. 1 in the paper's numbering:
/// `l1 = s-1-t`, `l2 = s-2-t`, `l3 = s-4-3-t`, `l4 = s-3-t`.
pub fn fig1_tunnels(topo: &Topology, ids: Fig1) -> [Path; 4] {
    let Fig1 { s, r, t } = ids;
    [
        path_through(topo, &[s, r[0], t]),
        path_through(topo, &[s, r[1], t]),
        path_through(topo, &[s, r[3], r[2], t]),
        path_through(topo, &[s, r[2], t]),
    ]
}

/// Fig. 1 instance using the first `k` tunnels (`k = 3` for FFC-3, `k = 4`
/// for FFC-4), demand 1 from s to t.
pub fn fig1_instance(k: usize) -> Instance {
    let (topo, ids) = fig1_topology();
    let tunnels = fig1_tunnels(&topo, ids);
    let mut b = InstanceBuilder::with_demands(&topo, vec![(ids.s, ids.t, 1.0)]);
    for path in tunnels.into_iter().take(k) {
        b = b.add_tunnel(path);
    }
    b.build()
}

/// Node handles of the Fig. 3 example.
#[derive(Debug, Clone, Copy)]
pub struct Fig3 {
    /// Source.
    pub s: NodeId,
    /// Middle router.
    pub u: NodeId,
    /// Destination.
    pub t: NodeId,
}

/// Fig. 3 topology: three parallel s-u links `e1..e3` (capacity 1/3) and two
/// parallel u-t links `e4, e5` (capacity 1).
///
/// Returns the topology, node ids, the s-u links, and the u-t links.
pub fn fig3_topology() -> (Topology, Fig3, [LinkId; 3], [LinkId; 2]) {
    let mut topo = Topology::new("fig3");
    let s = topo.add_node("s");
    let u = topo.add_node("u");
    let t = topo.add_node("t");
    let e1 = topo.add_link(s, u, 1.0 / 3.0);
    let e2 = topo.add_link(s, u, 1.0 / 3.0);
    let e3 = topo.add_link(s, u, 1.0 / 3.0);
    let e4 = topo.add_link(u, t, 1.0);
    let e5 = topo.add_link(u, t, 1.0);
    (topo, Fig3 { s, u, t }, [e1, e2, e3], [e4, e5])
}

/// Fig. 3 instance with all six two-hop tunnels (every `e_i × e_j`
/// combination), demand 1 from s to t.
pub fn fig3_instance() -> Instance {
    let (topo, ids, sus, uts) = fig3_topology();
    let mut b = InstanceBuilder::with_demands(&topo, vec![(ids.s, ids.t, 1.0)]);
    for &su in &sus {
        for &ut in &uts {
            b = b.add_tunnel(Path {
                nodes: vec![ids.s, ids.u, ids.t],
                links: vec![su, ut],
            });
        }
    }
    b.build()
}

/// Fig. 4 generalized topology: `m + 1` routers `s0..sm`; `p` parallel links
/// of capacity `1/p` between `s0` and `s1`; `n` parallel links of capacity 1
/// between each later consecutive pair.
pub fn fig4_topology(p: usize, n: usize, m: usize) -> (Topology, Vec<NodeId>) {
    assert!(m >= 1 && p >= 1 && n >= 1);
    let mut topo = Topology::new(format!("fig4(p={p},n={n},m={m})"));
    let nodes: Vec<NodeId> = (0..=m).map(|i| topo.add_node(format!("s{i}"))).collect();
    for _ in 0..p {
        topo.add_link(nodes[0], nodes[1], 1.0 / p as f64);
    }
    for i in 1..m {
        for _ in 0..n {
            topo.add_link(nodes[i], nodes[i + 1], 1.0);
        }
    }
    (topo, nodes)
}

/// Fig. 4 instance for PCF-LS (Corollary 3.1): every link is a tunnel for
/// its endpoint segment, plus the single logical sequence `s0, s1, ..., sm`.
/// Demand 1 from `s0` to `sm`.
pub fn fig4_ls_instance(p: usize, n: usize, m: usize) -> Instance {
    let (topo, nodes) = fig4_topology(p, n, m);
    let mut b =
        InstanceBuilder::with_demands(&topo, vec![(nodes[0], nodes[m], 1.0)]).no_auto_tunnels();
    // Each link is a tunnel between its endpoints.
    for l in topo.links() {
        let link = topo.link(l);
        b = b.add_tunnel(Path {
            nodes: vec![link.u, link.v],
            links: vec![l],
        });
    }
    if m >= 2 {
        b = b.add_ls(LogicalSequence::always(nodes.clone()));
    }
    b.build()
}

/// Node handles of the Fig. 5 example.
#[derive(Debug, Clone, Copy)]
pub struct Fig5 {
    /// Source.
    pub s: NodeId,
    /// Routers 1..7 (index i ↔ router i+1).
    pub r: [NodeId; 7],
    /// Destination.
    pub t: NodeId,
}

/// Fig. 5 topology.
///
/// Solid links (capacity 1): 1-5, 2-6, 3-7, 5-t, 6-t, 7-t.
/// Dashed links (capacity 1/2): s-1, s-2, s-3, s-4, 4-1, 4-2, 4-3.
///
/// With these capacities every Table 1 entry is reproduced exactly:
/// optimal 1, FFC 0, PCF-TF 2/3, PCF-LS 4/5, PCF-CLS 1, R3 0 under two
/// simultaneous failures.
pub fn fig5_topology() -> (Topology, Fig5) {
    let mut topo = Topology::new("fig5");
    let s = topo.add_node("s");
    let mut r = [s; 7];
    for (i, slot) in r.iter_mut().enumerate() {
        *slot = topo.add_node(format!("{}", i + 1));
    }
    let t = topo.add_node("t");
    // Dashed, capacity 1/2.
    topo.add_link(s, r[0], 0.5);
    topo.add_link(s, r[1], 0.5);
    topo.add_link(s, r[2], 0.5);
    topo.add_link(s, r[3], 0.5);
    topo.add_link(r[3], r[0], 0.5);
    topo.add_link(r[3], r[1], 0.5);
    topo.add_link(r[3], r[2], 0.5);
    // Solid, capacity 1.
    topo.add_link(r[0], r[4], 1.0);
    topo.add_link(r[1], r[5], 1.0);
    topo.add_link(r[2], r[6], 1.0);
    topo.add_link(r[4], t, 1.0);
    topo.add_link(r[5], t, 1.0);
    topo.add_link(r[6], t, 1.0);
    (topo, Fig5 { s, r, t })
}

/// The six s→t tunnels of Fig. 5: `s-i-(i+4)-t` and `s-4-i-(i+4)-t` for
/// `i ∈ {1,2,3}`.
pub fn fig5_tunnels(topo: &Topology, ids: Fig5) -> Vec<Path> {
    let Fig5 { s, r, t } = ids;
    let mut out = Vec::new();
    for i in 0..3 {
        out.push(path_through(topo, &[s, r[i], r[i + 4], t]));
    }
    for i in 0..3 {
        out.push(path_through(topo, &[s, r[3], r[i], r[i + 4], t]));
    }
    out
}

/// Which Fig. 5 scheme variant to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fig5Variant {
    /// Tunnels only (FFC / PCF-TF).
    TunnelsOnly,
    /// Adds the unconditional LS `(s, 4, t)` with extra s→4 tunnels
    /// (`s-4`, `s-1-4`, `s-2-4`, `s-3-4`) and the 4→t tunnels (PCF-LS).
    UnconditionalLs,
    /// Adds the LS `(s, 4, t)` conditioned on link `s-4` being *alive*,
    /// with segment s4 served by the single tunnel `s-4` (PCF-CLS, §3.4).
    ConditionalLs,
}

/// Builds the Fig. 5 instance for the given variant; demand 1 from s to t.
pub fn fig5_instance(variant: Fig5Variant) -> Instance {
    let (topo, ids) = fig5_topology();
    let Fig5 { s, r, t } = ids;
    let mut b = InstanceBuilder::with_demands(&topo, vec![(s, t, 1.0)]);
    for path in fig5_tunnels(&topo, ids) {
        b = b.add_tunnel(path);
    }
    match variant {
        Fig5Variant::TunnelsOnly => {}
        Fig5Variant::UnconditionalLs => {
            b = b.add_ls(LogicalSequence::always(vec![s, r[3], t]));
            // Segment s-4: richer tunnel set so the LS survives failures.
            b = b.add_tunnel(path_through(&topo, &[s, r[3]]));
            for i in 0..3 {
                b = b.add_tunnel(path_through(&topo, &[s, r[i], r[3]]));
            }
            for i in 0..3 {
                b = b.add_tunnel(path_through(&topo, &[r[3], r[i], r[i + 4], t]));
            }
        }
        Fig5Variant::ConditionalLs => {
            let s4 = topo
                .incident(s)
                .iter()
                .find(|&&(v, _)| v == r[3])
                .map(|&(_, l)| l)
                // audit:allow(no-panic-paths, fixture invariant; the s-4 link is added a few lines above in fig5_topology)
                .expect("link s-4 exists");
            b = b.add_ls(LogicalSequence {
                hops: vec![s, r[3], t],
                condition: Condition::AliveDead {
                    alive: vec![s4],
                    dead: vec![],
                },
            });
            // Segment s-4 uses only the direct tunnel (as in the paper).
            b = b.add_tunnel(path_through(&topo, &[s, r[3]]));
            for i in 0..3 {
                b = b.add_tunnel(path_through(&topo, &[r[3], r[i], r[i + 4], t]));
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_structure() {
        let (topo, ids) = fig1_topology();
        assert_eq!(topo.node_count(), 6);
        assert_eq!(topo.link_count(), 8);
        let tunnels = fig1_tunnels(&topo, ids);
        assert_eq!(tunnels[0].len(), 2);
        assert_eq!(tunnels[2].len(), 3); // s-4-3-t
                                         // l3 and l4 share link 3-t.
        assert_eq!(tunnels[2].shared_links(&tunnels[3]), 1);
        // l1, l2, l3 are pairwise disjoint (FFC-3 has p_st = 1).
        assert_eq!(tunnels[0].shared_links(&tunnels[1]), 0);
        assert_eq!(tunnels[0].shared_links(&tunnels[2]), 0);
        assert_eq!(tunnels[1].shared_links(&tunnels[2]), 0);
    }

    #[test]
    fn fig1_instance_p_st() {
        let i3 = fig1_instance(3);
        let i4 = fig1_instance(4);
        assert_eq!(i3.p_st(crate::instance::PairId(0)), 1);
        assert_eq!(i4.p_st(crate::instance::PairId(0)), 2);
    }

    #[test]
    fn fig3_has_six_tunnels() {
        let inst = fig3_instance();
        assert_eq!(inst.num_tunnels(), 6);
        assert_eq!(inst.p_st(crate::instance::PairId(0)), 3);
    }

    #[test]
    fn fig4_structure() {
        let (topo, nodes) = fig4_topology(3, 2, 2);
        assert_eq!(topo.node_count(), 3);
        assert_eq!(topo.link_count(), 3 + 2);
        assert_eq!(nodes.len(), 3);
        let inst = fig4_ls_instance(3, 2, 2);
        assert_eq!(inst.num_tunnels(), 5);
        assert_eq!(inst.num_lss(), 1);
    }

    #[test]
    fn fig5_structure() {
        let (topo, ids) = fig5_topology();
        assert_eq!(topo.node_count(), 9);
        assert_eq!(topo.link_count(), 13);
        let tunnels = fig5_tunnels(&topo, ids);
        assert_eq!(tunnels.len(), 6);
        let inst = fig5_instance(Fig5Variant::TunnelsOnly);
        // Link s-4 is shared by three tunnels: p_st = 3 → FFC must survive
        // f * p_st = 6 tunnel failures out of 6 → zero throughput.
        assert_eq!(inst.p_st(crate::instance::PairId(0)), 3);
    }

    #[test]
    fn path_through_resolves_links() {
        let (topo, ids) = fig1_topology();
        let p = path_through(&topo, &[ids.s, ids.r[0], ids.t]);
        assert_eq!(p.len(), 2);
        assert_eq!(p.source(), ids.s);
        assert_eq!(p.dest(), ids.t);
    }

    #[test]
    #[should_panic(expected = "not adjacent")]
    fn path_through_rejects_non_adjacent() {
        let (topo, ids) = fig1_topology();
        path_through(&topo, &[ids.s, ids.t]);
    }
}

/// Node handles of the Fig. 6 realization example (§4).
#[derive(Debug, Clone, Copy)]
pub struct Fig6 {
    /// Router A (the source).
    pub a: NodeId,
    /// Router B (the destination).
    pub b: NodeId,
    /// Router C.
    pub c: NodeId,
    /// Router D.
    pub d: NodeId,
}

/// The §4 walkthrough: tunnels `l1..l5` (each one direct link) and logical
/// sequences `q1 = (A,C,D)`, `q2 = (A,D,B)`, every reservation 1, demand 1
/// from A to B. Fig. 7's reservation matrix and Fig. 6(b)'s tunnel
/// fractions are computed from this instance in the tests.
///
/// Returns the instance and node handles; tunnels are indexed `l1..l5` in
/// the paper's order (`TunnelId(0)..TunnelId(4)`), LSs `q1, q2` as
/// `LsId(0), LsId(1)`.
pub fn fig6_instance() -> (Instance, Fig6) {
    let mut topo = Topology::new("fig6");
    let a = topo.add_node("A");
    let b = topo.add_node("B");
    let c = topo.add_node("C");
    let d = topo.add_node("D");
    topo.add_link(a, c, 1.0); // l1
    topo.add_link(c, d, 1.0); // l2
    topo.add_link(a, d, 1.0); // l3
    topo.add_link(d, b, 1.0); // l4
    topo.add_link(a, b, 1.0); // l5
    let mut builder = InstanceBuilder::with_demands(&topo, vec![(a, b, 1.0)]).no_auto_tunnels();
    for (u, v) in [(a, c), (c, d), (a, d), (d, b), (a, b)] {
        builder = builder.add_tunnel(path_through(&topo, &[u, v]));
    }
    builder = builder.add_ls(LogicalSequence::always(vec![a, c, d]));
    builder = builder.add_ls(LogicalSequence::always(vec![a, d, b]));
    (builder.build(), Fig6 { a, b, c, d })
}
