//! Plan hot-swap consistency under concurrent readers.
//!
//! While the background solver publishes new plan generations, every
//! reader must observe a *single consistent* generation per response —
//! a generation always travels with exactly the plan digest it was
//! solved with, generations only move forward on any one connection, and
//! the generation→digest table is byte-identical whether 1 or 8 reader
//! threads hammered the server. This is the test the nightly TSan job
//! runs over the `PlanCell` fast path.

use pcf_serve::{run_script, Json, PlanSpec, SchemeKind, ServeClient, ServeOptions, Server};
use std::collections::BTreeMap;
use std::thread;

fn abilene_spec() -> PlanSpec {
    PlanSpec {
        topo: pcf_topology::zoo::build("Abilene"),
        scheme: SchemeKind::Ffc,
        tunnels: 3,
        f: 1,
        seed: 1,
        mlu: 0.0,
        max_pairs: 40,
        tol: 1e-6,
        opts: pcf_core::RobustOptions::default(),
        srlgs: Vec::new(),
    }
}

/// Runs one serving session with `readers` concurrent reader threads
/// spanning two hot swaps, and returns the merged generation→digest
/// table every reader observed.
fn swap_session(readers: usize) -> BTreeMap<u64, String> {
    let server = Server::bind(abilene_spec(), ServeOptions::default(), "127.0.0.1:0").unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let tables: Vec<BTreeMap<u64, String>> = thread::scope(|s| {
        let daemon = s.spawn(|| server.run());

        // Readers: interleave realization queries with plan polls until
        // they see generation 3, recording every (gen, digest) response.
        let handles: Vec<_> = (0..readers)
            .map(|_| {
                let addr = addr.clone();
                s.spawn(move || {
                    let mut client = ServeClient::connect(&addr).unwrap();
                    let mut table: BTreeMap<u64, String> = BTreeMap::new();
                    let mut last_gen = 0u64;
                    loop {
                        let resps = client
                            .request_batch(&[r#"{"cmd":"realize"}"#, r#"{"cmd":"plan"}"#])
                            .unwrap();
                        for resp in &resps {
                            assert_eq!(
                                resp.get("ok").and_then(Json::as_bool),
                                Some(true),
                                "{}",
                                resp.render()
                            );
                            let gen = resp.get("gen").and_then(Json::as_u64).unwrap();
                            // Generations never move backwards on a
                            // connection: a reader that saw the new plan
                            // can never be served the old one again.
                            assert!(gen >= last_gen, "gen went backwards: {last_gen} -> {gen}");
                            last_gen = gen;
                        }
                        let plan = &resps[1];
                        let gen = plan.get("gen").and_then(Json::as_u64).unwrap();
                        let digest = plan
                            .get("plan_digest")
                            .and_then(Json::as_str)
                            .unwrap()
                            .to_string();
                        // One digest per generation, ever: a response can
                        // never mix one epoch's generation with another
                        // epoch's plan.
                        if let Some(seen) = table.get(&gen) {
                            assert_eq!(seen, &digest, "gen {gen} served two digests");
                        }
                        table.insert(gen, digest);
                        if gen >= 3 {
                            return table;
                        }
                    }
                })
            })
            .collect();

        // Controller: drive two swaps while the readers hammer the plan.
        let script = r#"
            {"cmd":"wait","gen":1,"timeout_ms":1000}
            {"cmd":"update","scale":0.9}
            {"cmd":"wait","gen":2,"timeout_ms":120000}
            {"cmd":"update","scale":0.8}
            {"cmd":"wait","gen":3,"timeout_ms":120000}
        "#;
        let drive = run_script(&addr, script).unwrap();
        assert!(
            drive.clean(),
            "controller violations: {:?}",
            drive.transcript
        );

        let tables: Vec<BTreeMap<u64, String>> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        server.request_shutdown();
        let _ = daemon.join();
        tables
    });

    // Merge: all readers must agree on the digest of every generation.
    let mut merged: BTreeMap<u64, String> = BTreeMap::new();
    for table in tables {
        for (gen, digest) in table {
            if let Some(seen) = merged.get(&gen) {
                assert_eq!(seen, &digest, "readers disagree on gen {gen}");
            }
            merged.insert(gen, digest);
        }
    }
    merged
}

#[test]
fn concurrent_readers_observe_consistent_generations() {
    let single = swap_session(1);
    let eight = swap_session(8);
    // Every session reaches generation 3 and the final plans agree.
    assert!(single.contains_key(&3));
    assert!(eight.contains_key(&3));
    // The generation→digest association is thread-count independent:
    // identical re-solves digest identically, so the tables agree on
    // every generation both sessions observed.
    for (gen, digest) in &single {
        if let Some(other) = eight.get(gen) {
            assert_eq!(
                digest, other,
                "gen {gen} digest differs across thread counts"
            );
        }
    }
    // Swaps change the plan: consecutive generations have distinct digests.
    let digests: Vec<&String> = eight.values().collect();
    for pair in digests.windows(2) {
        assert_ne!(pair[0], pair[1], "swap published an identical plan");
    }
}
