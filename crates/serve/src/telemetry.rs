//! Serving telemetry: atomic counters, lock-free latency histograms, and
//! the [`ServeReport`] the `stats` command and the bench harness render.
//!
//! Counters are plain relaxed atomics — the hot paths (realization
//! queries, event ingestion) touch nothing heavier than a `fetch_add`.
//! Latencies go into fixed power-of-two-bucket histograms (one atomic
//! per bucket), so recording is wait-free and percentiles are read
//! without stopping writers.
//!
//! Following the `ReplayReport` precedent, [`ServeReport`] renders two
//! ways: [`ServeReport::to_json`] includes everything (latency, cache
//! counters), while [`ServeReport::deterministic_json`] carries only
//! fields that are a pure function of the served command sequence — no
//! wall-clock, and no cache hit/miss counts (racing readers may
//! duplicate a factorization, shifting a hit to a miss without changing
//! any answer). The deterministic form is what CI byte-compares.

// audit:allow(no-wallclock-in-solver, latency telemetry is measurement output and never feeds routing or admission decisions)
use std::time::Instant;

use pcf_replay::CacheStats;
use std::sync::atomic::{AtomicU64, Ordering};

/// A started latency measurement (thin wrapper so wall-clock reads stay
/// confined to this module).
pub struct Stopwatch {
    // audit:allow(no-wallclock-in-solver, measurement only; see module doc)
    t0: Instant,
}

impl Stopwatch {
    /// Starts timing.
    pub fn start() -> Stopwatch {
        Stopwatch {
            // audit:allow(no-wallclock-in-solver, measurement only; see module doc)
            t0: Instant::now(),
        }
    }

    /// Nanoseconds since [`Stopwatch::start`].
    pub fn elapsed_ns(&self) -> u64 {
        self.t0.elapsed().as_nanos() as u64
    }

    /// Milliseconds since [`Stopwatch::start`].
    pub fn elapsed_ms(&self) -> u64 {
        self.elapsed_ns() / 1_000_000
    }
}

const BUCKETS: usize = 64;

/// Wait-free latency histogram: bucket `i` counts samples in
/// `[2^(i-1), 2^i)` nanoseconds (bucket 0 counts 0 ns).
pub struct AtomicHistogram {
    buckets: [AtomicU64; BUCKETS],
}

impl Default for AtomicHistogram {
    fn default() -> AtomicHistogram {
        AtomicHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl AtomicHistogram {
    /// Records one sample.
    // audit:hot
    pub fn record(&self, ns: u64) {
        let bucket = (64 - ns.leading_zeros() as usize).min(BUCKETS - 1);
        // audit:allow(atomics-discipline, independent bucket counters; snapshots tolerate torn reads) audit:allow(panic-reachability, bucket is .min(BUCKETS-1)-clamped so the index is always in range)
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        // audit:allow(atomics-discipline, independent bucket counters; snapshots tolerate torn reads)
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// The q-th percentile, reported as the upper bound of its bucket
    /// (a ≤2× overestimate — the right direction for latency SLOs).
    /// Returns 0 when empty; `q` is clamped to `[0, 100]`.
    pub fn percentile_ns(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            // audit:allow(atomics-discipline, independent bucket counters; snapshots tolerate torn reads)
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 100.0) / 100.0;
        let rank = ((q * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return if i == 0 { 0 } else { 1u64 << i };
            }
        }
        1u64 << (BUCKETS - 1)
    }

    /// Median (bucket upper bound).
    pub fn p50_ns(&self) -> u64 {
        self.percentile_ns(50.0)
    }

    /// 99th percentile (bucket upper bound).
    pub fn p99_ns(&self) -> u64 {
        self.percentile_ns(99.0)
    }
}

/// All serving counters, shared by every connection thread.
#[derive(Default)]
pub struct Telemetry {
    /// Realization/utilization/admission queries served.
    pub queries: AtomicU64,
    /// Failure events ingested (down/up/wobble/reset).
    pub events: AtomicU64,
    /// Admission checks that admitted.
    pub admitted: AtomicU64,
    /// Admission checks that rejected.
    pub rejected: AtomicU64,
    /// Plan hot-swaps published.
    pub swaps: AtomicU64,
    /// Background re-solves that failed (plan kept at the old epoch).
    pub solve_failures: AtomicU64,
    /// Re-solves warm-started from the previous epoch's cut pool.
    pub warm_epochs: AtomicU64,
    /// Re-solves that ran cold (no pool yet, or a shape mismatch).
    pub cold_epochs: AtomicU64,
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Connections rejected at the cap with a `busy` line.
    pub busy_rejects: AtomicU64,
    /// Connections reaped for exceeding the idle timeout.
    pub idle_reaps: AtomicU64,
    /// Lines that failed to parse or named an unknown command.
    pub protocol_errors: AtomicU64,
    /// Per-ladder-stage realization outcomes
    /// (normal/rescaled/shed/failed — same order as `EventStage::code`).
    pub degrade: [AtomicU64; 4],
    /// Latency of query commands (realize/util/admit).
    pub query_latency: AtomicHistogram,
    /// Latency of event commands (down/up/wobble/reset).
    pub event_latency: AtomicHistogram,
}

impl Telemetry {
    /// Relaxed increment of one counter.
    // audit:hot
    pub fn bump(counter: &AtomicU64) {
        // audit:allow(atomics-discipline, monotonic telemetry counter; no data is published through it)
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a ladder-stage outcome (0 normal, 1 rescaled, 2 shed,
    /// 3 failed).
    // audit:hot
    pub fn record_stage(&self, code: u8) {
        // audit:allow(atomics-discipline, monotonic telemetry counter; no data is published through it) audit:allow(panic-reachability, index is .min(3)-clamped to the fixed array size)
        self.degrade[(code as usize).min(3)].fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshots everything into a report (counters are individually
    /// accurate; the set is not mutually atomic — fine for telemetry).
    pub fn snapshot(&self, gen: u64, plan_digest: u64, cache: CacheStats) -> ServeReport {
        // audit:allow(atomics-discipline, monotonic telemetry counters; no data is published through them)
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        ServeReport {
            gen,
            plan_digest,
            queries: load(&self.queries),
            events: load(&self.events),
            admitted: load(&self.admitted),
            rejected: load(&self.rejected),
            swaps: load(&self.swaps),
            solve_failures: load(&self.solve_failures),
            warm_epochs: load(&self.warm_epochs),
            cold_epochs: load(&self.cold_epochs),
            connections: load(&self.connections),
            busy_rejects: load(&self.busy_rejects),
            idle_reaps: load(&self.idle_reaps),
            protocol_errors: load(&self.protocol_errors),
            degrade: [
                load(&self.degrade[0]),
                load(&self.degrade[1]),
                load(&self.degrade[2]),
                load(&self.degrade[3]),
            ],
            cache,
            query_p50_ns: self.query_latency.p50_ns(),
            query_p99_ns: self.query_latency.p99_ns(),
            event_p50_ns: self.event_latency.p50_ns(),
            event_p99_ns: self.event_latency.p99_ns(),
        }
    }
}

/// A point-in-time summary of a serving session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeReport {
    /// Published plan generation at snapshot time.
    pub gen: u64,
    /// The plan's content digest.
    pub plan_digest: u64,
    /// Queries served (realize/util/admit).
    pub queries: u64,
    /// Failure events ingested.
    pub events: u64,
    /// Admissions granted.
    pub admitted: u64,
    /// Admissions rejected.
    pub rejected: u64,
    /// Plan hot-swaps published.
    pub swaps: u64,
    /// Failed background re-solves.
    pub solve_failures: u64,
    /// Re-solves warm-started from the previous epoch's cut pool.
    pub warm_epochs: u64,
    /// Re-solves run cold (no pool yet, or a shape mismatch).
    pub cold_epochs: u64,
    /// Connections accepted.
    pub connections: u64,
    /// Connections rejected at the cap.
    pub busy_rejects: u64,
    /// Connections reaped for idling past the timeout.
    pub idle_reaps: u64,
    /// Malformed or unknown commands.
    pub protocol_errors: u64,
    /// Ladder-stage outcomes (normal, rescaled, shed, failed).
    pub degrade: [u64; 4],
    /// Shared factor-cache counters of the current epoch.
    pub cache: CacheStats,
    /// Query latency median (bucket upper bound, ns).
    pub query_p50_ns: u64,
    /// Query latency p99 (bucket upper bound, ns).
    pub query_p99_ns: u64,
    /// Event latency median (bucket upper bound, ns).
    pub event_p50_ns: u64,
    /// Event latency p99 (bucket upper bound, ns).
    pub event_p99_ns: u64,
}

impl ServeReport {
    /// Full single-line JSON, latency and cache counters included.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"gen\":{},\"plan_digest\":\"{:016x}\",\"queries\":{},\"events\":{},\
             \"admitted\":{},\"rejected\":{},\"swaps\":{},\"solve_failures\":{},\
             \"warm_epochs\":{},\"cold_epochs\":{},\
             \"connections\":{},\"busy_rejects\":{},\"idle_reaps\":{},\"protocol_errors\":{},\
             \"degrade\":{{\"normal\":{},\"rescaled\":{},\"shed\":{},\"failed\":{}}},\
             \"cache\":{{\"hits\":{},\"misses\":{},\"evictions\":{},\"errors\":{}}},\
             \"latency_ns\":{{\"query_p50\":{},\"query_p99\":{},\"event_p50\":{},\"event_p99\":{}}}}}",
            self.gen,
            self.plan_digest,
            self.queries,
            self.events,
            self.admitted,
            self.rejected,
            self.swaps,
            self.solve_failures,
            self.warm_epochs,
            self.cold_epochs,
            self.connections,
            self.busy_rejects,
            self.idle_reaps,
            self.protocol_errors,
            self.degrade[0],
            self.degrade[1],
            self.degrade[2],
            self.degrade[3],
            self.cache.hits,
            self.cache.misses,
            self.cache.evictions,
            self.cache.errors,
            self.query_p50_ns,
            self.query_p99_ns,
            self.event_p50_ns,
            self.event_p99_ns,
        )
    }

    /// JSON restricted to fields that are a pure function of the served
    /// command sequence: no latency, no qps, no cache hit/miss counts
    /// (reader races can shift a hit to a miss without changing any
    /// answer). Byte-identical across runs and thread counts for the
    /// same logical session — the CI smoke job compares this form.
    pub fn deterministic_json(&self) -> String {
        format!(
            "{{\"gen\":{},\"plan_digest\":\"{:016x}\",\"queries\":{},\"events\":{},\
             \"admitted\":{},\"rejected\":{},\"swaps\":{},\"solve_failures\":{},\
             \"warm_epochs\":{},\"cold_epochs\":{},\"protocol_errors\":{},\
             \"degrade\":{{\"normal\":{},\"rescaled\":{},\"shed\":{},\"failed\":{}}}}}",
            self.gen,
            self.plan_digest,
            self.queries,
            self.events,
            self.admitted,
            self.rejected,
            self.swaps,
            self.solve_failures,
            self.warm_epochs,
            self.cold_epochs,
            self.protocol_errors,
            self.degrade[0],
            self.degrade[1],
            self.degrade[2],
            self.degrade[3],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_percentiles_bracket_samples() {
        let h = AtomicHistogram::default();
        assert_eq!(h.p99_ns(), 0);
        for ns in [100u64, 200, 400, 800, 100_000] {
            h.record(ns);
        }
        assert_eq!(h.count(), 5);
        // Bucket upper bounds: within 2x above the true percentile.
        let p50 = h.p50_ns();
        assert!((256..=512).contains(&p50), "p50 = {p50}");
        let p99 = h.p99_ns();
        assert!((100_000..=262_144).contains(&p99), "p99 = {p99}");
        // Degenerate inputs stay in range.
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 7);
        assert!(h.percentile_ns(0.0) <= h.percentile_ns(100.0));
    }

    #[test]
    fn reports_render_and_deterministic_excludes_latency() {
        let t = Telemetry::default();
        Telemetry::bump(&t.queries);
        Telemetry::bump(&t.events);
        t.record_stage(0);
        t.record_stage(2);
        t.query_latency.record(1234);
        let rep = t.snapshot(3, 0xabcd, CacheStats::default());
        let full = rep.to_json();
        assert!(full.contains("\"latency_ns\""));
        assert!(full.contains("\"gen\":3"));
        assert!(full.contains("000000000000abcd"));
        let det = rep.deterministic_json();
        assert!(!det.contains("latency"), "{det}");
        assert!(!det.contains("cache"), "{det}");
        assert!(det.contains("\"queries\":1"));
        assert!(det.contains("\"shed\":1"));
        // Both forms are themselves valid single-line JSON.
        assert!(crate::json::Json::parse(&full).is_ok());
        assert!(crate::json::Json::parse(&det).is_ok());
        assert!(!full.contains('\n'));
    }

    #[test]
    fn stopwatch_is_monotone() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_ns();
        let b = sw.elapsed_ns();
        assert!(b >= a);
        assert!(sw.elapsed_ms() <= 1000);
    }
}
