//! Incremental re-solving for row-growing linear programs.
//!
//! Cutting-plane algorithms (PCF's robust master problem among them) solve a
//! sequence of LPs where each member differs from the last only by a handful
//! of appended constraints. Rebuilding and re-solving from scratch discards
//! everything the previous solve learned; this module keeps the terminal
//! simplex workspace of [`crate::simplex`] alive and, when rows are
//! appended, warm-starts from the previous optimal basis:
//!
//! * the basis representation is extended in place: the sparse engine
//!   appends a *border* op to its factor file (the block
//!   `[[B, 0], [C, D]]` with diagonal `D`, because each appended row's
//!   entering basic column — its slack or artificial — touches only that
//!   row), re-using the existing LU factors and eta file untouched; the
//!   dense engine extends its explicit inverse with the block formula
//!   `[[B, 0], [C, D]]^-1 = [[B^-1, 0], [-D^-1 C B^-1, D^-1]]`. Either way
//!   the warm start costs `O(k·m)`–`O(k·m^2)` instead of a fresh
//!   factorization plus a full phase 1;
//! * an appended row whose activity at the current point already lies within
//!   its bounds gets its slack basic directly and needs no phase-1 work at
//!   all;
//! * a violated row gets a single fresh artificial, and the warm phase 1
//!   prices only those fresh artificials (all previous artificials stay
//!   fixed at zero);
//! * any numerical trouble on the warm path (iteration limit, residual
//!   infeasibility) falls back to a cold solve of the full model, so results
//!   are never worse than rebuilding from scratch.
//!
//! The one modelling restriction is inherited from [`crate::model`]: rows
//! reference structural variables only, which is what makes appending a row
//! a pure basis *extension*. Adding a variable after a solve invalidates the
//! retained basis and the next solve runs cold.

use crate::model::{LpProblem, RowId, Solution, SolveError, Status, VarId};
use crate::simplex::{self, Basis, SolverState, VarState};

/// Counters describing how an [`IncrementalLp`] has been solved so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IncrementalStats {
    /// Solves answered by warm-starting the retained basis.
    pub warm_solves: usize,
    /// Solves that ran the full two-phase method from scratch (including the
    /// mandatory first solve).
    pub cold_solves: usize,
    /// Warm attempts abandoned for numerical reasons and re-run cold (these
    /// also increment `cold_solves`).
    pub warm_fallbacks: usize,
}

/// A linear program that stays alive across solves so that appended rows
/// re-solve from the previous optimal basis.
///
/// # Example
///
/// ```
/// use pcf_lp::{IncrementalLp, LpProblem, Sense};
///
/// // max x + y  s.t.  x + y <= 4,  x,y in [0, 3]
/// let mut lp = LpProblem::new(Sense::Maximize);
/// let x = lp.add_var(0.0, 3.0, 1.0);
/// let y = lp.add_var(0.0, 3.0, 1.0);
/// lp.add_le(vec![(x, 1.0), (y, 1.0)], 4.0);
///
/// let mut inc = IncrementalLp::new(lp);
/// let s0 = inc.solve().unwrap();
/// assert!((s0.objective - 4.0).abs() < 1e-7);
///
/// // Cut off part of the optimum and re-solve warm.
/// inc.add_le(vec![(x, 1.0)], 1.0);
/// let s1 = inc.solve().unwrap();
/// assert!((s1.objective - 4.0).abs() < 1e-7); // x=1, y=3
/// assert_eq!(inc.stats().warm_solves, 1);
/// ```
pub struct IncrementalLp {
    problem: LpProblem,
    state: Option<SolverState>,
    /// How many of `problem`'s rows the retained state has absorbed.
    solved_rows: usize,
    cached: Option<Solution>,
    stats: IncrementalStats,
}

impl IncrementalLp {
    /// Wraps a fully-built problem. The first [`solve`](Self::solve) runs
    /// the ordinary two-phase method; later solves warm-start.
    pub fn new(problem: LpProblem) -> Self {
        IncrementalLp {
            problem,
            state: None,
            solved_rows: 0,
            cached: None,
            stats: IncrementalStats::default(),
        }
    }

    /// The underlying model (read-only; mutate through the `add_*` methods
    /// so the retained basis stays consistent).
    pub fn problem(&self) -> &LpProblem {
        &self.problem
    }

    /// Solve statistics accumulated so far.
    pub fn stats(&self) -> IncrementalStats {
        self.stats
    }

    /// Adds a variable. Invalidates the retained basis: the next solve runs
    /// cold. Intended for model construction before the first solve.
    pub fn add_var(&mut self, lower: f64, upper: f64, obj: f64) -> VarId {
        self.state = None;
        self.solved_rows = 0;
        self.cached = None;
        self.problem.add_var(lower, upper, obj)
    }

    /// Appends a range constraint; the next solve warm-starts from the
    /// retained basis if one is available.
    pub fn add_row(
        &mut self,
        coeffs: impl IntoIterator<Item = (VarId, f64)>,
        lower: f64,
        upper: f64,
    ) -> RowId {
        self.cached = None;
        self.problem.add_row(coeffs, lower, upper)
    }

    /// Appends `expr <= rhs`.
    pub fn add_le(&mut self, coeffs: impl IntoIterator<Item = (VarId, f64)>, rhs: f64) -> RowId {
        self.add_row(coeffs, f64::NEG_INFINITY, rhs)
    }

    /// Appends `expr >= rhs`.
    pub fn add_ge(&mut self, coeffs: impl IntoIterator<Item = (VarId, f64)>, rhs: f64) -> RowId {
        self.add_row(coeffs, rhs, f64::INFINITY)
    }

    /// Appends `expr == rhs`.
    pub fn add_eq(&mut self, coeffs: impl IntoIterator<Item = (VarId, f64)>, rhs: f64) -> RowId {
        self.add_row(coeffs, rhs, rhs)
    }

    /// Solves the current model, warm-starting when possible.
    pub fn solve(&mut self) -> Result<Solution, SolveError> {
        if self.solved_rows == self.problem.num_rows() {
            if let Some(sol) = &self.cached {
                return Ok(sol.clone());
            }
        }

        if self.problem.num_rows() > self.solved_rows {
            // The warm path consumes the state; it is reinstalled only if
            // the attempt ends in a trustworthy terminal status.
            if let Some(st) = self.state.take() {
                match self.warm_solve(st) {
                    Some((sol, st)) => {
                        self.stats.warm_solves += 1;
                        self.state = st;
                        self.solved_rows = self.problem.num_rows();
                        self.cached = Some(sol.clone());
                        return Ok(sol);
                    }
                    None => self.stats.warm_fallbacks += 1,
                }
            }
        }

        let (sol, st) = simplex::solve_with_state(&self.problem, self.problem.options());
        self.stats.cold_solves += 1;
        self.state = st;
        self.solved_rows = self.problem.num_rows();
        self.cached = Some(sol.clone());
        Ok(sol)
    }

    /// Attempts the warm-started solve; `None` means "fall back to cold".
    fn warm_solve(&mut self, mut st: SolverState) -> Option<(Solution, Option<SolverState>)> {
        let p = &self.problem;
        if p.num_vars() != st.n {
            return None; // variables were added behind our back
        }
        let tab = &mut st.tab;
        let n = st.n;
        let m_old = tab.m;
        let k = p.rows.len() - self.solved_rows;
        let opts = tab.opts.clone();

        // ---- Extend the tableau with the appended rows. ----
        // Each new row i gets a slack column; if the row is violated at the
        // current point it also gets one artificial. Either way the column
        // chosen basic for row i has its only entry in row i, so the new
        // basis matrix is [[B, 0], [C, D]] with D diagonal.
        let mut d_sign = Vec::with_capacity(k);
        let mut new_xb = Vec::with_capacity(k);
        // Per new row: (old basis position, scaled coeff) for columns basic
        // in the old basis — the nonzeros of C.
        let mut c_rows: Vec<Vec<(usize, f64)>> = Vec::with_capacity(k);
        let mut new_arts: Vec<usize> = Vec::new();
        // Structural entries of the appended rows, batched into one CSC
        // rebuild; iteration is row-major so each column's adds arrive in
        // ascending row order as `append_rows` requires.
        let mut adds: Vec<(usize, usize, f64)> = Vec::new();
        // Fresh slack/artificial columns, each a singleton in its new row.
        let mut new_cols: Vec<(usize, f64)> = Vec::new();
        let mut next_col = tab.ncols;

        for (t, row) in p.rows[self.solved_rows..].iter().enumerate() {
            let i = m_old + t;
            let rscale = if opts.scale {
                simplex::row_scale(&row.coeffs, &st.cscale)
            } else {
                1.0
            };
            let mut act = 0.0;
            let mut c_entries = Vec::new();
            for &(j, a) in &row.coeffs {
                let av = a * rscale * st.cscale[j];
                act += av * tab.value(j);
                adds.push((j, i, av));
                if let VarState::Basic(r) = tab.state[j] {
                    c_entries.push((r, av));
                }
            }
            c_rows.push(c_entries);
            tab.rscale.push(rscale);
            let lo = row.lower * rscale;
            let hi = row.upper * rscale;

            // Slack column for row i.
            let s_col = next_col;
            next_col += 1;
            new_cols.push((i, -1.0));
            tab.lower.push(lo);
            tab.upper.push(hi);
            tab.cost.push(0.0);
            if act >= lo - opts.tol && act <= hi + opts.tol {
                // Row already satisfied: its slack enters the basis at the
                // current activity. No phase-1 work needed.
                tab.state.push(VarState::Basic(i));
                tab.basis.push(s_col);
                d_sign.push(-1.0);
                new_xb.push(act);
            } else {
                // Violated: park the slack on the near bound and cover the
                // residual with a fresh artificial (value |resid| >= 0).
                let sv = if act < lo { lo } else { hi };
                tab.state.push(if act < lo {
                    VarState::AtLower
                } else {
                    VarState::AtUpper
                });
                let resid = act - sv;
                let s = if resid >= 0.0 { -1.0 } else { 1.0 };
                let a_col = next_col;
                next_col += 1;
                new_cols.push((i, s));
                tab.lower.push(0.0);
                tab.upper.push(f64::INFINITY);
                tab.cost.push(0.0);
                tab.state.push(VarState::Basic(i));
                tab.basis.push(a_col);
                d_sign.push(s);
                new_xb.push(resid.abs());
                new_arts.push(a_col);
            }
        }
        let m_new = m_old + k;
        tab.a.append_rows(m_new, &adds);
        for &(i, coef) in &new_cols {
            tab.a.push_col([(i, coef)]);
        }
        tab.ncols = tab.a.ncols();
        debug_assert_eq!(tab.ncols, next_col);

        // ---- Extend the basis representation with the appended block. ----
        match &mut tab.rep {
            Basis::Sparse { engine } => {
                // One border op: [[B, 0], [C, D]] with diagonal D. The
                // existing factors and eta file keep working untouched.
                let border = c_rows
                    .iter()
                    .zip(&d_sign)
                    .map(|(c, &dv)| {
                        let entries: Vec<(u32, f64)> =
                            c.iter().map(|&(r, v)| (r as u32, v)).collect();
                        (entries, dv)
                    })
                    .collect();
                engine.append_border(border);
            }
            Basis::Dense { binv: old } => {
                let mut binv = vec![0.0; m_new * m_new];
                for r in 0..m_old {
                    binv[r * m_new..r * m_new + m_old]
                        .copy_from_slice(&old[r * m_old..(r + 1) * m_old]);
                }
                for t in 0..k {
                    let r = m_old + t;
                    let d_inv = 1.0 / d_sign[t];
                    // Row r of the new inverse: [-(1/d) C_t B^-1 | e_t / d].
                    for &(br, c) in &c_rows[t] {
                        let src = &old[br * m_old..(br + 1) * m_old];
                        let f = d_inv * c;
                        let dst = &mut binv[r * m_new..r * m_new + m_old];
                        for (dq, sq) in dst.iter_mut().zip(src.iter()) {
                            *dq -= f * sq;
                        }
                    }
                    binv[r * m_new + r] = d_inv;
                }
                *old = binv;
            }
        }
        tab.m = m_new;
        tab.xb.extend_from_slice(&new_xb);
        // Re-derive all basic values through the extended inverse; this both
        // refreshes the new rows and validates the extension numerically.
        tab.recompute_basics();

        let start_iters = tab.iterations;
        let max_iter = tab.iterations + opts.max_iterations.unwrap_or(20_000 + 100 * (m_new + n));

        // ---- Warm phase 1: drive only the fresh artificials to zero. ----
        if !new_arts.is_empty() {
            let mut p1 = vec![0.0; tab.ncols];
            for &a in &new_arts {
                p1[a] = 1.0;
            }
            let s1 = tab.optimize(&p1, max_iter);
            if s1 != Status::Optimal {
                return None;
            }
            let art_sum: f64 = new_arts.iter().map(|&a| tab.value(a).max(0.0)).sum();
            if art_sum > opts.tol.max(1e-6) {
                // The appended rows are (numerically) unsatisfiable from
                // here; let the cold path deliver the verdict.
                return None;
            }
            for &a in &new_arts {
                tab.upper[a] = 0.0;
                if !matches!(tab.state[a], VarState::Basic(_)) {
                    tab.state[a] = VarState::AtLower;
                }
            }
        }

        // ---- Phase 2 from the (repaired) basis. ----
        let p2 = tab.cost.clone();
        let s2 = tab.optimize(&p2, max_iter);
        let mut sol = simplex::extract(tab, p, n, &st.cscale, s2);
        sol.iterations = tab.iterations - start_iters;
        match sol.status {
            Status::Optimal => Some((sol, Some(st))),
            // A warm unbounded ray is a genuine certificate, but the basis
            // is not worth keeping.
            Status::Unbounded => Some((sol, None)),
            // Iteration limit / demoted optimal: retry cold.
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Sense;

    fn assert_close(a: f64, b: f64) {
        assert!(
            (a - b).abs() <= 1e-7 * (1.0 + b.abs()),
            "expected {b}, got {a}"
        );
    }

    #[test]
    fn warm_resolve_matches_scratch_when_cut_is_slack() {
        // max x + y, x + y <= 4, x,y in [0,3]; then append x + 2y <= 10,
        // which the optimum already satisfies.
        let mut lp = LpProblem::new(Sense::Maximize);
        let x = lp.add_var(0.0, 3.0, 1.0);
        let y = lp.add_var(0.0, 3.0, 1.0);
        lp.add_le(vec![(x, 1.0), (y, 1.0)], 4.0);
        let mut inc = IncrementalLp::new(lp);
        let s0 = inc.solve().unwrap();
        assert_close(s0.objective, 4.0);

        inc.add_le(vec![(x, 1.0), (y, 2.0)], 10.0);
        let s1 = inc.solve().unwrap();
        assert_eq!(s1.status, Status::Optimal);
        assert_close(s1.objective, 4.0);
        assert_eq!(inc.stats().warm_solves, 1);
        assert_eq!(inc.stats().cold_solves, 1);
        // Satisfied row: no phase-1 pivots should have been necessary, and
        // phase 2 starts optimal.
        assert_eq!(s1.iterations, 0);
    }

    #[test]
    fn warm_resolve_matches_scratch_when_cut_is_violated() {
        // Same base model; append a cut that slices off the old optimum.
        let mut lp = LpProblem::new(Sense::Maximize);
        let x = lp.add_var(0.0, 3.0, 2.0);
        let y = lp.add_var(0.0, 3.0, 1.0);
        lp.add_le(vec![(x, 1.0), (y, 1.0)], 4.0);
        let mut inc = IncrementalLp::new(lp);
        let s0 = inc.solve().unwrap();
        assert_close(s0.objective, 7.0); // x=3, y=1

        inc.add_le(vec![(x, 1.0)], 1.0);
        let s1 = inc.solve().unwrap();
        assert_eq!(s1.status, Status::Optimal);
        assert_close(s1.objective, 5.0); // x=1, y=3
        assert_eq!(inc.stats().warm_solves, 1);

        // Cross-check against a from-scratch build of the final model.
        let mut full = LpProblem::new(Sense::Maximize);
        let fx = full.add_var(0.0, 3.0, 2.0);
        let fy = full.add_var(0.0, 3.0, 1.0);
        full.add_le(vec![(fx, 1.0), (fy, 1.0)], 4.0);
        full.add_le(vec![(fx, 1.0)], 1.0);
        let fs = full.solve().unwrap();
        assert_close(s1.objective, fs.objective);
    }

    #[test]
    fn repeated_appends_stay_warm() {
        // Tighten the same knapsack five times; every re-solve is warm.
        let mut lp = LpProblem::new(Sense::Maximize);
        let x = lp.add_var(0.0, 10.0, 1.0);
        let y = lp.add_var(0.0, 10.0, 1.0);
        lp.add_le(vec![(x, 1.0), (y, 1.0)], 12.0);
        let mut inc = IncrementalLp::new(lp);
        inc.solve().unwrap();
        for r in 0..5 {
            let rhs = 10.0 - r as f64;
            inc.add_le(vec![(x, 1.0), (y, 1.0)], rhs);
            let s = inc.solve().unwrap();
            assert_eq!(s.status, Status::Optimal);
            assert_close(s.objective, rhs);
        }
        assert_eq!(inc.stats().warm_solves, 5);
        assert_eq!(inc.stats().cold_solves, 1);
        assert_eq!(inc.stats().warm_fallbacks, 0);
    }

    #[test]
    fn infeasible_append_detected() {
        let mut lp = LpProblem::new(Sense::Maximize);
        let x = lp.add_var(0.0, 1.0, 1.0);
        lp.add_le(vec![(x, 1.0)], 1.0);
        let mut inc = IncrementalLp::new(lp);
        inc.solve().unwrap();
        inc.add_ge(vec![(x, 1.0)], 2.0);
        let s = inc.solve().unwrap();
        assert_eq!(s.status, Status::Infeasible);
    }

    #[test]
    fn cached_solution_returned_without_resolving() {
        let mut lp = LpProblem::new(Sense::Maximize);
        let x = lp.add_var(0.0, 1.0, 1.0);
        lp.add_le(vec![(x, 1.0)], 1.0);
        let mut inc = IncrementalLp::new(lp);
        let s0 = inc.solve().unwrap();
        let s1 = inc.solve().unwrap();
        assert_eq!(s0.objective, s1.objective);
        assert_eq!(inc.stats().cold_solves, 1);
        assert_eq!(inc.stats().warm_solves, 0);
    }

    #[test]
    fn add_var_invalidates_basis_and_solves_cold() {
        let mut lp = LpProblem::new(Sense::Maximize);
        let x = lp.add_var(0.0, 2.0, 1.0);
        lp.add_le(vec![(x, 1.0)], 2.0);
        let mut inc = IncrementalLp::new(lp);
        inc.solve().unwrap();
        let y = inc.add_var(0.0, 2.0, 1.0);
        inc.add_le(vec![(y, 1.0)], 1.0);
        let s = inc.solve().unwrap();
        assert_close(s.objective, 3.0);
        assert_eq!(inc.stats().cold_solves, 2);
        assert_eq!(inc.stats().warm_solves, 0);
    }

    #[test]
    fn equality_append_with_free_slack_range() {
        // Append an equality row, which gives the slack a fixed range.
        let mut lp = LpProblem::new(Sense::Minimize);
        let x = lp.add_var(0.0, 5.0, 1.0);
        let y = lp.add_var(0.0, 5.0, 2.0);
        lp.add_ge(vec![(x, 1.0), (y, 1.0)], 2.0);
        let mut inc = IncrementalLp::new(lp);
        let s0 = inc.solve().unwrap();
        assert_close(s0.objective, 2.0); // x=2
        inc.add_eq(vec![(y, 1.0)], 1.5);
        let s1 = inc.solve().unwrap();
        assert_eq!(s1.status, Status::Optimal);
        assert_close(s1.objective, 3.5); // x=0.5, y=1.5
    }
}
