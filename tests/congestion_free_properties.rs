//! Property-based tests of the core congestion-freedom invariants.
//!
//! Strategy: generate random 2-edge-connected topologies (ring + random
//! chords), random demand subsets, and random failure budgets; solve each
//! scheme; then *enumerate every concrete failure scenario* and check that
//! the realized routing never overloads a link and always delivers the
//! admitted demand. This is the system-level contract of the paper.

use proptest::prelude::*;

use pcf_core::realize::{realize_routing, FailureState};
use pcf_core::validate::validate_all;
use pcf_core::{
    pcf_ls_instance, solve_ffc, solve_pcf_ls, solve_pcf_tf, tunnel_instance, FailureModel,
    Instance, RobustOptions, RobustSolution,
};
use pcf_topology::{NodeId, Topology};
use pcf_traffic::TrafficMatrix;

/// Builds a ring + chords topology (always 2-edge-connected).
fn ring_with_chords(n: usize, chords: &[(usize, usize)], caps: &[f64]) -> Topology {
    let mut t = Topology::new("random");
    let nodes: Vec<NodeId> = (0..n).map(|i| t.add_node(format!("n{i}"))).collect();
    let mut ci = 0usize;
    let mut cap = |ci: &mut usize| {
        let c = caps[*ci % caps.len()];
        *ci += 1;
        c
    };
    for i in 0..n {
        t.add_link(nodes[i], nodes[(i + 1) % n], cap(&mut ci));
    }
    for &(a, b) in chords {
        let (a, b) = (a % n, b % n);
        if a != b {
            // parallel links are fine; keep them for generality
            t.add_link(nodes[a], nodes[b], cap(&mut ci));
        }
    }
    t
}

fn arb_topology() -> impl Strategy<Value = Topology> {
    (5usize..8)
        .prop_flat_map(|n| {
            let chords = prop::collection::vec((0usize..n, 0usize..n), 1..4);
            let caps = prop::collection::vec(prop::sample::select(vec![1.0, 2.0, 4.0]), 4);
            (Just(n), chords, caps)
        })
        .prop_map(|(n, chords, caps)| ring_with_chords(n, &chords, &caps))
}

fn arb_demands(n: usize) -> impl Strategy<Value = Vec<(usize, usize, f64)>> {
    prop::collection::vec((0usize..n, 0usize..n, 0.2..1.5f64), 2..5)
}

fn served(inst: &Instance, sol: &RobustSolution) -> Vec<f64> {
    inst.pair_ids()
        .map(|p| sol.z[p.0] * inst.demand(p))
        .collect()
}

fn tm_from(n: usize, demands: &[(usize, usize, f64)]) -> Option<TrafficMatrix> {
    let mut tm = TrafficMatrix::zeros(n);
    let mut any = false;
    for &(s, t, d) in demands {
        let (s, t) = (s % n, t % n);
        if s != t {
            tm.set_demand(NodeId(s as u32), NodeId(t as u32), d);
            any = true;
        }
    }
    any.then_some(tm)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// FFC, PCF-TF and PCF-LS allocations are congestion-free under every
    /// concrete targeted scenario, and each admits no less than the scheme
    /// below it in the dominance order.
    #[test]
    fn schemes_are_congestion_free_and_ordered(
        topo in arb_topology(),
        demands in arb_demands(8),
        f in 1usize..=2,
    ) {
        let n = topo.node_count();
        let Some(tm) = tm_from(n, &demands) else { return Ok(()); };
        let fm = FailureModel::links(f);
        let opts = RobustOptions::default();

        let ti = tunnel_instance(&topo, &tm, 3);
        let ffc = solve_ffc(&ti, &fm, &opts);
        let tf = solve_pcf_tf(&ti, &fm, &opts);
        prop_assert!(tf.objective >= ffc.objective - 1e-6 * (1.0 + ffc.objective));

        let li = pcf_ls_instance(&topo, &tm, 3);
        let ls = solve_pcf_ls(&li, &fm, &opts);

        for (inst, sol, label) in [(&ti, &ffc, "ffc"), (&ti, &tf, "pcf-tf"), (&li, &ls, "pcf-ls")] {
            let report = validate_all(inst, &fm, &sol.a, &sol.b, &served(inst, sol), 1e-6);
            prop_assert!(
                report.congestion_free(),
                "{label} violated: {:?}",
                report.violations.first().map(|v| &v.kind)
            );
        }
    }

    /// The utilization vector of the realized routing is always within
    /// [0, 1] (Proposition 5), and dead tunnels carry nothing.
    #[test]
    fn realization_invariants(
        topo in arb_topology(),
        demands in arb_demands(8),
    ) {
        let n = topo.node_count();
        let Some(tm) = tm_from(n, &demands) else { return Ok(()); };
        let fm = FailureModel::links(1);
        let inst = pcf_ls_instance(&topo, &tm, 3);
        let sol = solve_pcf_ls(&inst, &fm, &RobustOptions::default());
        let sv = served(&inst, &sol);
        for mask in fm.enumerate_scenarios(inst.topo()) {
            let state = FailureState::new(&inst, &mask);
            let routing = realize_routing(&inst, &state, &sol.a, &sol.b, &sv, 1e-6)
                .expect("solved allocation must realize");
            for u in &routing.u {
                prop_assert!((-1e-9..=1.0 + 1e-9).contains(u), "u = {u}");
            }
            for l in inst.tunnel_ids() {
                if !state.tunnel_alive[l.0] {
                    prop_assert_eq!(routing.tunnel_flow[l.0], 0.0);
                }
            }
        }
    }

    /// Demand scale is monotone: a larger failure budget can never admit
    /// more traffic.
    #[test]
    fn admission_monotone_in_failure_budget(
        topo in arb_topology(),
        demands in arb_demands(8),
    ) {
        let n = topo.node_count();
        let Some(tm) = tm_from(n, &demands) else { return Ok(()); };
        let inst = tunnel_instance(&topo, &tm, 3);
        let opts = RobustOptions::default();
        let mut prev = f64::INFINITY;
        for f in 0..=2 {
            let sol = solve_pcf_tf(&inst, &FailureModel::links(f), &opts);
            prop_assert!(
                sol.objective <= prev + 1e-6 * (1.0 + prev.min(1e9)),
                "f={f}: {} > previous {prev}",
                sol.objective
            );
            prev = sol.objective;
        }
    }
}
