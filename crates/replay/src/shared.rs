//! A thread-safe factorization cache shared by many replay engines.
//!
//! [`ReplayEngine`](crate::ReplayEngine)'s private cache is single-owner:
//! each engine pays its own factorizations. A serving deployment inverts
//! that shape — many reader threads answer realization queries against
//! *one* plan, and a failure state factored by any of them should be a
//! cache hit for all of them. [`SharedFactorCache`] provides exactly that:
//! a sharded, `RwLock`-per-shard map from `[factor-kind] ++
//! liveness-signature` keys to `Arc`-shared solve state, with the same
//! FIFO eviction discipline and the same hit/miss/error accounting as the
//! private cache (counters are atomics aggregated over every attached
//! engine).
//!
//! Entries are pure functions of the plan and the key, so two threads
//! racing on a fresh signature may both factor it — the first insert wins
//! and the loser adopts the winner's entry. Both candidates are
//! bit-identical (same numerical code, same inputs), so which one wins is
//! unobservable; the race costs one redundant factorization, never a
//! wrong answer. Factorization happens *outside* the shard lock so an
//! O(n³) factor never blocks readers hitting other signatures.
//!
//! Sharing across *plans* is unsound (the key does not encode the plan);
//! callers keep one cache per plan. The serve layer hangs one off each
//! plan epoch, so a hot swap naturally starts cold.

use crate::engine::{CacheEntry, CacheStats};
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Number of independent shards. More shards means less write contention
/// when distinct fresh signatures insert concurrently; 16 is plenty for
/// the reader counts the serve layer runs (≤ machine cores).
const SHARDS: usize = 16;

/// One shard: an insertion-order (FIFO) bounded map, mirroring the
/// private `FactorCache` discipline per shard.
struct Shard {
    entries: BTreeMap<Vec<u64>, Arc<CacheEntry>>,
    order: VecDeque<Vec<u64>>,
}

/// A sharded, thread-safe signature → factorization cache for engines
/// created with
/// [`ReplayEngine::with_shared_cache`](crate::ReplayEngine::with_shared_cache).
pub struct SharedFactorCache {
    shards: Vec<RwLock<Shard>>,
    /// Per-shard entry bound (total retention ≤ `SHARDS * shard_capacity`,
    /// and ≥ the requested capacity).
    shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    errors: AtomicU64,
}

impl SharedFactorCache {
    /// Builds a cache retaining at least `capacity` factorizations in
    /// total (`0` disables retention: every realization factors from
    /// scratch, and is counted as a miss).
    ///
    /// The bound is enforced per shard at `ceil(capacity / shards)`, so a
    /// pathological key distribution can under-use — but never exceed —
    /// `shards * ceil(capacity / shards)` entries.
    pub fn new(capacity: usize) -> Self {
        let shards = if capacity == 0 {
            0
        } else {
            SHARDS.min(capacity)
        };
        SharedFactorCache {
            shards: (0..shards)
                .map(|_| {
                    RwLock::new(Shard {
                        entries: BTreeMap::new(),
                        order: VecDeque::new(),
                    })
                })
                .collect(),
            shard_capacity: if shards == 0 {
                0
            } else {
                capacity.div_ceil(shards)
            },
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            errors: AtomicU64::new(0),
        }
    }

    /// Snapshot of the aggregated counters. Under concurrent use the
    /// fields are each individually accurate but not mutually atomic —
    /// fine for telemetry, which is their only consumer.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            // audit:allow(atomics-discipline, monotonic telemetry counters; no data is published through them)
            hits: self.hits.load(Ordering::Relaxed),
            // audit:allow(atomics-discipline, monotonic telemetry counters; no data is published through them)
            misses: self.misses.load(Ordering::Relaxed),
            // audit:allow(atomics-discipline, monotonic telemetry counters; no data is published through them)
            evictions: self.evictions.load(Ordering::Relaxed),
            // audit:allow(atomics-discipline, monotonic telemetry counters; no data is published through them)
            errors: self.errors.load(Ordering::Relaxed),
        }
    }

    /// Number of factorizations currently retained across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.read()
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .entries
                    .len()
            })
            .sum()
    }

    /// Whether the cache currently retains nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn shard_of(&self, key: &[u64]) -> usize {
        // FNV-1a over the key words; any stable mix works — this only
        // spreads load, it never affects results.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &w in key {
            for shift in [0u32, 8, 16, 24, 32, 40, 48, 56] {
                h ^= (w >> shift) & 0xff;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        }
        (h % self.shards.len() as u64) as usize
    }

    fn count(&self, entry: &CacheEntry, was_cached: bool) {
        match entry {
            // audit:allow(atomics-discipline, monotonic telemetry counter; no data is published through it)
            Err(_) => self.errors.fetch_add(1, Ordering::Relaxed),
            // audit:allow(atomics-discipline, monotonic telemetry counter; no data is published through it)
            Ok(_) if was_cached => self.hits.fetch_add(1, Ordering::Relaxed),
            // audit:allow(atomics-discipline, monotonic telemetry counter; no data is published through it)
            Ok(_) => self.misses.fetch_add(1, Ordering::Relaxed),
        };
    }

    /// Returns the entry for `key`, computing and inserting it on a miss.
    /// Same accounting contract as the private cache: error entries count
    /// as errors (whether fresh or replayed), never as hits or misses.
    pub(crate) fn lookup_or_insert(
        &self,
        key: &[u64],
        compute: impl FnOnce() -> CacheEntry,
    ) -> Arc<CacheEntry> {
        if self.shards.is_empty() {
            // Retention disabled: compute-only, like the engine's cold
            // mode but with shared counters.
            let entry = Arc::new(compute());
            self.count(&entry, false);
            return entry;
        }
        let shard = &self.shards[self.shard_of(key)];
        {
            let guard = shard.read().unwrap_or_else(|p| p.into_inner());
            if let Some(entry) = guard.entries.get(key) {
                let entry = Arc::clone(entry);
                drop(guard);
                self.count(&entry, true);
                return entry;
            }
        }
        // Miss: factor outside the lock so an O(n³) factorization never
        // blocks readers of other signatures in this shard.
        let fresh = Arc::new(compute());
        let mut guard = shard.write().unwrap_or_else(|p| p.into_inner());
        let entry = if let Some(existing) = guard.entries.get(key) {
            // Lost the race: another thread inserted while we factored.
            // Adopt its (bit-identical) entry; ours is dropped.
            Arc::clone(existing)
        } else {
            if guard.entries.len() >= self.shard_capacity {
                if let Some(old) = guard.order.pop_front() {
                    guard.entries.remove(&old);
                    // audit:allow(atomics-discipline, monotonic telemetry counter; no data is published through it)
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
            guard.order.push_back(key.to_vec());
            guard.entries.insert(key.to_vec(), Arc::clone(&fresh));
            fresh
        };
        drop(guard);
        // The racing loser still paid a factorization: count a miss, not
        // a hit, so hit_rate reflects factorizations actually avoided.
        self.count(&entry, false);
        entry
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ReplayEngine;
    use crate::trace::{EventKind, EventTrace};
    use pcf_core::{solve_pcf_ls, FailureModel, Instance, RobustOptions};
    use pcf_topology::zoo;
    use pcf_traffic::gravity;
    use std::thread;

    fn sprint_plan() -> (Instance, Vec<f64>, Vec<f64>, Vec<f64>) {
        let topo = zoo::build("Sprint");
        let tm = gravity(&topo, 11);
        let inst = pcf_core::pcf_ls_instance(&topo, &tm, 3);
        let sol = solve_pcf_ls(&inst, &FailureModel::links(1), &RobustOptions::default());
        let served: Vec<f64> = inst
            .pair_ids()
            .map(|p| sol.z[p.0] * inst.demand(p))
            .collect();
        (inst, sol.a, sol.b, served)
    }

    #[test]
    fn shared_results_are_bit_identical_to_private() {
        let (inst, a, b, served) = sprint_plan();
        let trace = EventTrace::flaps(inst.topo(), 80, 1, 3);
        let shared = SharedFactorCache::new(64);
        let mut warm = ReplayEngine::with_shared_cache(&inst, &a, &b, &served, 1e-6, &shared);
        let mut private = ReplayEngine::new(&inst, &a, &b, &served, 1e-6, 64);
        for ev in &trace.events {
            warm.apply(ev).unwrap();
            private.apply(ev).unwrap();
            match (warm.realize(), private.realize()) {
                (Ok(x), Ok(y)) => {
                    assert_eq!(x.pairs, y.pairs);
                    for (c, f) in x.u.iter().zip(&y.u) {
                        assert_eq!(c.to_bits(), f.to_bits());
                    }
                    for (c, f) in x.arc_loads.iter().zip(&y.arc_loads) {
                        assert_eq!(c.to_bits(), f.to_bits());
                    }
                }
                (Err(x), Err(y)) => assert_eq!(x, y),
                (x, y) => panic!("shared {x:?} disagrees with private {y:?}"),
            }
        }
        // Identical event streams, identical accounting.
        assert_eq!(warm.cache_stats(), private.cache_stats());
    }

    #[test]
    fn second_engine_hits_what_the_first_factored() {
        let (inst, a, b, served) = sprint_plan();
        let shared = SharedFactorCache::new(64);
        let mut first = ReplayEngine::with_shared_cache(&inst, &a, &b, &served, 1e-6, &shared);
        first.realize().unwrap();
        assert_eq!(shared.stats().misses, 1);

        // A fresh engine over the same plan: its very first realization
        // of the same (all-alive) state is a hit, not a miss.
        let mut second = ReplayEngine::with_shared_cache(&inst, &a, &b, &served, 1e-6, &shared);
        second.realize().unwrap();
        let stats = shared.stats();
        assert_eq!(stats.hits, 1, "{stats:?}");
        assert_eq!(stats.misses, 1);
        assert_eq!(shared.len(), 1);
    }

    #[test]
    fn concurrent_engines_agree_bitwise() {
        let (inst, a, b, served) = sprint_plan();
        let trace = EventTrace::flaps(inst.topo(), 40, 1, 5);
        let shared = SharedFactorCache::new(64);
        // Reference: a private-cache engine over the same trace.
        let mut reference = ReplayEngine::new(&inst, &a, &b, &served, 1e-6, 64);
        let mut expect = Vec::new();
        for ev in &trace.events {
            reference.apply(ev).unwrap();
            expect.push(reference.realize().map(|r| r.max_utilization(&inst)));
        }
        let results: Vec<Vec<Result<f64, _>>> = thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    scope.spawn(|| {
                        let mut engine =
                            ReplayEngine::with_shared_cache(&inst, &a, &b, &served, 1e-6, &shared);
                        trace
                            .events
                            .iter()
                            .map(|ev| {
                                engine.apply(ev).unwrap();
                                engine.realize().map(|r| r.max_utilization(&inst))
                            })
                            .collect()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for got in &results {
            assert_eq!(got.len(), expect.len());
            for (g, e) in got.iter().zip(&expect) {
                match (g, e) {
                    (Ok(x), Ok(y)) => assert_eq!(x.to_bits(), y.to_bits()),
                    (Err(x), Err(y)) => assert_eq!(x, y),
                    (x, y) => panic!("shared {x:?} disagrees with reference {y:?}"),
                }
            }
        }
        // Racing threads may duplicate a factorization (extra misses) but
        // the retained entries are bounded and hits dominate.
        let stats = shared.stats();
        assert!(stats.hits > stats.misses, "{stats:?}");
        assert_eq!(stats.errors, 0);
    }

    #[test]
    fn shared_eviction_respects_capacity() {
        let (inst, a, b, served) = sprint_plan();
        let trace = EventTrace::rolling_maintenance(inst.topo(), 120, 5);
        // Capacity below the shard count: collapses to one shard of 4.
        let shared = SharedFactorCache::new(4);
        let mut engine = ReplayEngine::with_shared_cache(&inst, &a, &b, &served, 1e-6, &shared);
        for ev in &trace.events {
            engine.apply(ev).unwrap();
            engine.realize().unwrap();
        }
        assert!(shared.len() <= 4 * SHARDS.min(4), "{}", shared.len());
        let stats = shared.stats();
        assert!(stats.evictions > 0, "{stats:?}");
        assert_eq!(stats.hits + stats.misses, 120);
    }

    #[test]
    fn zero_capacity_counts_misses_and_retains_nothing() {
        let (inst, a, b, served) = sprint_plan();
        let shared = SharedFactorCache::new(0);
        let mut engine = ReplayEngine::with_shared_cache(&inst, &a, &b, &served, 1e-6, &shared);
        for _ in 0..3 {
            engine.realize().unwrap();
        }
        assert!(shared.is_empty());
        let stats = shared.stats();
        assert_eq!(stats.misses, 3, "{stats:?}");
        assert_eq!(stats.hits, 0);
    }

    #[test]
    fn wobble_events_do_not_perturb_shared_keys() {
        let (inst, a, b, served) = sprint_plan();
        let shared = SharedFactorCache::new(16);
        let mut engine = ReplayEngine::with_shared_cache(&inst, &a, &b, &served, 1e-6, &shared);
        engine.realize().unwrap();
        engine
            .apply(&crate::LinkEvent {
                link: pcf_topology::LinkId(0),
                kind: EventKind::Wobble { permille: 500 },
            })
            .unwrap();
        engine.realize().unwrap();
        let stats = shared.stats();
        assert_eq!(stats.hits, 1, "{stats:?}");
        assert_eq!(shared.len(), 1);
    }
}
