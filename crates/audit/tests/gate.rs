//! The audit gate, exercised the way CI runs it: real workspace scan,
//! real `audit.baseline`, plus fault injection proving the gate actually
//! fails when a forbidden construct lands in a library crate.

use pcf_audit::{
    audit_files, compare, find_root, parse_baseline, scan_workspace, Baseline, Lint, SourceFile,
};
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    find_root(&PathBuf::from(env!("CARGO_MANIFEST_DIR")))
        .expect("audit crate lives in the workspace")
}

fn checked_in_baseline(root: &Path) -> Baseline {
    let text = std::fs::read_to_string(root.join("audit.baseline"))
        .expect("audit.baseline is checked in at the workspace root");
    parse_baseline(&text).expect("checked-in baseline parses")
}

/// The PR gate itself: the tree as committed must carry no findings
/// beyond the checked-in baseline.
#[test]
fn workspace_is_clean_against_the_checked_in_baseline() {
    let root = workspace_root();
    let files = scan_workspace(&root).expect("workspace scans");
    let findings = audit_files(&files);
    let cmp = compare(&findings, &checked_in_baseline(&root));
    assert!(
        cmp.pass(),
        "new findings beyond audit.baseline: {:#?}",
        cmp.regressions
    );
}

/// Fault injection: an `unwrap()` added to pcf-core must fail the gate
/// even with the shipped baseline in place — the baseline tolerates the
/// file's *existing* debt count, not one more.
#[test]
fn injected_unwrap_in_pcf_core_fails_the_gate() {
    let root = workspace_root();
    let mut files = scan_workspace(&root).expect("workspace scans");
    files.push(SourceFile {
        rel: "crates/core/src/injected.rs".to_string(),
        text: "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n".to_string(),
    });
    let cmp = compare(&audit_files(&files), &checked_in_baseline(&root));
    assert!(!cmp.pass(), "gate let an injected unwrap() through");
    assert!(
        cmp.regressions.iter().any(|r| {
            r.lint == Lint::NoPanicPaths.name() && r.file == "crates/core/src/injected.rs"
        }),
        "regressions do not name the injected file: {:#?}",
        cmp.regressions
    );
}

/// Same injection into a file that already has baselined debt: the count
/// goes one over its tolerance, so the bucket regresses.
#[test]
fn injected_unwrap_on_top_of_existing_debt_fails_the_gate() {
    let root = workspace_root();
    let baseline = checked_in_baseline(&root);
    let Some(((_, rel), _)) = baseline
        .iter()
        .find(|((lint, _), count)| lint == Lint::NoPanicPaths.name() && **count > 0)
    else {
        return; // all debt paid off: nothing to piggyback on
    };
    let mut files = scan_workspace(&root).expect("workspace scans");
    let f = files
        .iter_mut()
        .find(|f| &f.rel == rel)
        .expect("baselined file exists");
    f.text
        .push_str("\npub fn audit_injected(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n");
    let cmp = compare(&audit_files(&files), &baseline);
    assert!(!cmp.pass(), "gate missed one-over-baseline in {rel}");
}

/// The analyzer holds itself to its own rules: zero findings (not merely
/// baselined ones) in `crates/audit/src`.
#[test]
fn audit_crate_audits_itself_clean() {
    let root = workspace_root();
    let files: Vec<SourceFile> = scan_workspace(&root)
        .expect("workspace scans")
        .into_iter()
        .filter(|f| f.rel.starts_with("crates/audit/src/"))
        .collect();
    assert!(!files.is_empty());
    let findings = audit_files(&files);
    assert!(findings.is_empty(), "pcf-audit flags itself: {findings:#?}");
}

/// Scanner fixtures that combine the hazards: raw strings holding fake
/// code, nested block comments, a cfg(test) module, and allow escapes —
/// none of which may produce findings in a library path.
#[test]
fn hostile_fixture_produces_no_false_positives() {
    let fixture = r####"
//! Module docs mentioning unwrap() and HashMap in prose.

/* outer /* nested comment with x.unwrap() */ still commented
   panic!("not real") */
pub fn quoted() -> &'static str {
    let _lifetime: &'static str = "x.unwrap() inside a string";
    let _raw = r#"panic!("raw string"); y.expect("msg")"#;
    let _hash = r##"HashMap::new() == 0.0"##;
    let _byte = br"std::thread::spawn";
    let _ch = '"';
    "done"
}

// audit:allow(no-panic-paths, fixture demonstrates a justified escape)
pub fn allowed_line(x: Option<u32>) -> u32 { x.unwrap() }

#[cfg(test)]
mod tests {
    #[test]
    fn test_only_code_is_exempt() {
        let v: Option<u32> = None;
        assert!(v.unwrap_or(1) == 1u32.min(2));
        Some(3).unwrap();
    }
}
"####;
    let files = [SourceFile {
        rel: "crates/core/src/fixture.rs".to_string(),
        text: fixture.to_string(),
    }];
    let findings = audit_files(&files);
    assert!(findings.is_empty(), "false positives: {findings:#?}");
}

/// And the inverse fixture: the same hazards, but with one real violation
/// after them, which must still be caught at the right line.
#[test]
fn hostile_fixture_still_catches_the_real_violation() {
    let fixture = "let _s = r#\"panic!(\"decoy\")\"#; /* x.unwrap() */\nreal.unwrap();\n";
    let files = [SourceFile {
        rel: "crates/core/src/fixture.rs".to_string(),
        text: fixture.to_string(),
    }];
    let findings = audit_files(&files);
    assert_eq!(findings.len(), 1, "{findings:#?}");
    assert_eq!(findings[0].line, 2);
    assert_eq!(findings[0].lint, Lint::NoPanicPaths);
}

/// Hostile fixture for the v2 interprocedural lints: atomics, locks, and
/// hot markers spelled inside strings and comments must not fire.
#[test]
fn v2_decoys_in_strings_and_comments_do_not_fire() {
    let fixture = r##"
// A comment mentioning c.fetch_add(1, Ordering::Relaxed) and .lock().
pub fn decoy() -> &'static str {
    let _s = "c.fetch_add(1, Ordering::Relaxed)";
    let _r = r#"let a = m.lock(); let b = n.lock();"#;
    /* // audit:hot
       fn fake() { v.push(1) } */
    "ok"
}
"##;
    let files = [SourceFile {
        rel: "crates/serve/src/fixture.rs".to_string(),
        text: fixture.to_string(),
    }];
    let findings = audit_files(&files);
    assert!(findings.is_empty(), "false positives: {findings:#?}");
}

/// Fault injection against the real workspace: a panic! made reachable
/// from the `PlanCell::swap` hot entry must fail the gate with a
/// panic-reachability finding carrying a witness chain.
#[test]
fn injected_panic_reachable_from_hot_entry_fails_the_gate() {
    let root = workspace_root();
    let mut files = scan_workspace(&root).expect("workspace scans");
    let f = files
        .iter_mut()
        .find(|f| f.rel == "crates/serve/src/plan.rs")
        .expect("plan.rs exists");
    let anchor = "self.gen.store(gen, Ordering::Release);";
    assert!(f.text.contains(anchor), "swap() anchor moved; update test");
    f.text = f.text.replace(
        anchor,
        "self.gen.store(gen, Ordering::Release);\n        injected_panic();",
    );
    f.text
        .push_str("\nfn injected_panic() {\n    panic!(\"injected\")\n}\n");
    let cmp = compare(&audit_files(&files), &checked_in_baseline(&root));
    assert!(!cmp.pass(), "gate let a hot-reachable panic through");
    let reach = cmp
        .regressions
        .iter()
        .find(|r| r.lint == Lint::PanicReachability.name() && r.file == "crates/serve/src/plan.rs")
        .unwrap_or_else(|| panic!("no panic-reachability regression: {:#?}", cmp.regressions));
    assert!(
        reach
            .findings
            .iter()
            .any(|f| f.what.contains("injected") || !f.chain.is_empty()),
        "finding carries no witness: {:#?}",
        reach.findings
    );
}

/// Fault injection: `Ordering::Relaxed` without a reasoned allow in a
/// library crate fails the gate under atomics-discipline.
#[test]
fn injected_relaxed_without_reason_fails_the_gate() {
    let root = workspace_root();
    let mut files = scan_workspace(&root).expect("workspace scans");
    files.push(SourceFile {
        rel: "crates/serve/src/injected.rs".to_string(),
        text: "use std::sync::atomic::{AtomicU64, Ordering};\n\
               pub struct S {\n    pub c: AtomicU64,\n}\n\
               pub fn f(s: &S) {\n    s.c.fetch_add(1, Ordering::Relaxed);\n}\n"
            .to_string(),
    });
    let cmp = compare(&audit_files(&files), &checked_in_baseline(&root));
    assert!(!cmp.pass(), "gate let an unreasoned Relaxed through");
    assert!(
        cmp.regressions.iter().any(|r| {
            r.lint == Lint::AtomicsDiscipline.name() && r.file == "crates/serve/src/injected.rs"
        }),
        "no atomics-discipline regression: {:#?}",
        cmp.regressions
    );
}

/// Fault injection: an allocating call inside an `audit:hot` function
/// fails the gate under hot-path-alloc.
#[test]
fn injected_hot_path_allocation_fails_the_gate() {
    let root = workspace_root();
    let mut files = scan_workspace(&root).expect("workspace scans");
    files.push(SourceFile {
        rel: "crates/serve/src/injected.rs".to_string(),
        text: "// audit:hot\npub fn injected_hot() -> Vec<u32> {\n    Vec::new()\n}\n".to_string(),
    });
    let cmp = compare(&audit_files(&files), &checked_in_baseline(&root));
    assert!(!cmp.pass(), "gate let a hot-path allocation through");
    assert!(
        cmp.regressions.iter().any(|r| {
            r.lint == Lint::HotPathAlloc.name() && r.file == "crates/serve/src/injected.rs"
        }),
        "no hot-path-alloc regression: {:#?}",
        cmp.regressions
    );
}

/// Fault injection: taking a second `.lock()` while a guard is live
/// fails the gate under lock-discipline.
#[test]
fn injected_nested_lock_fails_the_gate() {
    let root = workspace_root();
    let mut files = scan_workspace(&root).expect("workspace scans");
    files.push(SourceFile {
        rel: "crates/serve/src/injected.rs".to_string(),
        text: "use std::sync::Mutex;\n\
               pub fn f(a: &Mutex<u32>, b: &Mutex<u32>) -> u32 {\n\
               let g1 = a.lock();\n\
               let g2 = b.lock();\n\
               g1.map(|x| *x).unwrap_or(0) + g2.map(|x| *x).unwrap_or(0)\n\
               }\n"
        .to_string(),
    });
    let cmp = compare(&audit_files(&files), &checked_in_baseline(&root));
    assert!(!cmp.pass(), "gate let a nested lock through");
    assert!(
        cmp.regressions.iter().any(|r| {
            r.lint == Lint::LockDiscipline.name() && r.file == "crates/serve/src/injected.rs"
        }),
        "no lock-discipline regression: {:#?}",
        cmp.regressions
    );
}
