//! A minimal `forall`-style property-test runner.
//!
//! Design goals, in order: determinism, debuggability, zero dependencies.
//! Unlike proptest there is no strategy algebra — a test supplies a plain
//! generator closure over [`Pcg32`] — and shrinking is "lite": the caller
//! optionally provides a function producing smaller candidate inputs, and
//! the runner greedily descends while the property keeps failing, bounded
//! by an iteration cap.
//!
//! Every case runs on a seed derived from a fixed base seed, so a failure
//! report (`case`, `seed`) reproduces bit-for-bit by rerunning the test.
//!
//! ```
//! use pcf_rng::{forall, no_shrink, Config, Pcg32};
//!
//! forall(
//!     "abs is nonnegative",
//!     &Config::default(),
//!     |rng: &mut Pcg32| rng.range_f64(-100.0, 100.0),
//!     no_shrink,
//!     |&x| {
//!         if x.abs() >= 0.0 {
//!             Ok(())
//!         } else {
//!             Err(format!("abs({x}) < 0"))
//!         }
//!     },
//! );
//! ```

use crate::{Pcg32, SplitMix64};

/// Runner configuration: how many cases, from which seed corpus, and how
/// hard to shrink.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases.
    pub cases: usize,
    /// Base seed; per-case seeds are derived from it with [`SplitMix64`].
    pub seed: u64,
    /// Cap on shrink steps once a failure is found.
    pub max_shrink_steps: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 64,
            seed: 0x9cf_2020, // the paper's venue, for a memorable corpus
            max_shrink_steps: 200,
        }
    }
}

impl Config {
    /// A config running `cases` cases with the default corpus.
    pub fn with_cases(cases: usize) -> Self {
        Config {
            cases,
            ..Config::default()
        }
    }
}

/// The trivial shrinker: no candidates.
pub fn no_shrink<T>(_: &T) -> Vec<T> {
    Vec::new()
}

/// Checks `prop` on `cfg.cases` inputs drawn from `gen`.
///
/// On the first failing input, applies shrinking-lite: repeatedly asks
/// `shrink` for candidate reductions and descends into the first candidate
/// that still fails, up to `cfg.max_shrink_steps` candidate evaluations.
/// Then panics with the (shrunk) input, its provenance (case index and
/// seed), and the property's error message.
///
/// # Panics
/// Panics iff the property fails on some generated input.
pub fn forall<T: std::fmt::Debug>(
    name: &str,
    cfg: &Config,
    mut gen: impl FnMut(&mut Pcg32) -> T,
    shrink: impl Fn(&T) -> Vec<T>,
    prop: impl Fn(&T) -> Result<(), String>,
) {
    let mut seeds = SplitMix64::new(cfg.seed);
    for case in 0..cfg.cases {
        let case_seed = seeds.next_u64();
        let mut rng = Pcg32::seed_from_u64(case_seed);
        let input = gen(&mut rng);
        let Err(first_err) = prop(&input) else {
            continue;
        };

        // Shrinking-lite: greedy descent through caller-provided candidates.
        let mut best = input;
        let mut best_err = first_err;
        let mut budget = cfg.max_shrink_steps;
        'outer: while budget > 0 {
            for cand in shrink(&best) {
                budget -= 1;
                if let Err(e) = prop(&cand) {
                    best = cand;
                    best_err = e;
                    continue 'outer; // restart from the smaller input
                }
                if budget == 0 {
                    break;
                }
            }
            break; // no candidate still fails: local minimum
        }

        // audit:allow(no-panic-paths, panicking with the shrunk counterexample is this harness's entire job)
        panic!(
            "property {name:?} failed (case {case}/{total}, seed {case_seed:#x}):\n  \
             input: {best:?}\n  error: {best_err}",
            total = cfg.cases,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases_deterministically() {
        let cfg = Config::with_cases(10);
        let mut ran = 0usize;
        let mut first = Vec::new();
        forall(
            "collect",
            &cfg,
            |rng| {
                let v = rng.next_u32();
                first.push(v);
                ran += 1;
                v
            },
            no_shrink,
            |_| Ok(()),
        );
        assert_eq!(ran, 10);
        let mut second = Vec::new();
        forall(
            "collect again",
            &cfg,
            |rng| {
                let v = rng.next_u32();
                second.push(v);
                v
            },
            no_shrink,
            |_| Ok(()),
        );
        assert_eq!(first, second);
    }

    #[test]
    #[should_panic(expected = "property \"always fails\" failed")]
    fn failing_property_panics_with_context() {
        forall(
            "always fails",
            &Config::with_cases(3),
            |rng| rng.range_usize(0, 100),
            no_shrink,
            |&x| Err(format!("nope: {x}")),
        );
    }

    #[test]
    fn shrinking_descends_to_a_minimal_failure() {
        // Property: x < 10. Generator draws large values; the integer
        // halving shrinker must land exactly on 10.
        let result = std::panic::catch_unwind(|| {
            forall(
                "x < 10",
                &Config::with_cases(5),
                |rng| rng.range_usize(50, 100),
                |&x| if x > 0 { vec![x / 2, x - 1] } else { vec![] },
                |&x| {
                    if x < 10 {
                        Ok(())
                    } else {
                        Err(format!("{x} >= 10"))
                    }
                },
            );
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("input: 10"), "shrunk message: {msg}");
    }
}
