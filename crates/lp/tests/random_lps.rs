//! Cross-validation of the simplex solver against brute-force vertex
//! enumeration on randomly generated small LPs.
//!
//! For a bounded LP, an optimum lies at a vertex of the feasible polytope —
//! a point where at least `n` linearly independent constraints (row bounds
//! or variable bounds) are tight. On tiny instances we can enumerate all
//! candidate tight sets, solve the resulting square systems, filter by
//! feasibility, and take the best vertex. The simplex solver must agree.

use pcf_lp::{solve_dense, DenseMatrix, IncrementalLp, LpProblem, Sense, Status};
use pcf_rng::{forall, no_shrink, Config, Pcg32};

/// A tight-able constraint: coefficients and the activity value it pins.
struct TightCandidate {
    coeffs: Vec<f64>, // dense over n vars
    value: f64,
}

/// Brute-force optimum of a fully bounded LP by vertex enumeration.
/// Returns `None` when no feasible vertex exists (infeasible problem).
fn brute_force(
    n: usize,
    obj: &[f64],
    var_bounds: &[(f64, f64)],
    rows: &[(Vec<f64>, f64, f64)], // (dense coeffs, lower, upper)
) -> Option<f64> {
    let mut cands: Vec<TightCandidate> = Vec::new();
    for (j, &(l, u)) in var_bounds.iter().enumerate() {
        let mut c = vec![0.0; n];
        c[j] = 1.0;
        cands.push(TightCandidate {
            coeffs: c.clone(),
            value: l,
        });
        cands.push(TightCandidate {
            coeffs: c,
            value: u,
        });
    }
    for (c, l, u) in rows {
        cands.push(TightCandidate {
            coeffs: c.clone(),
            value: *l,
        });
        cands.push(TightCandidate {
            coeffs: c.clone(),
            value: *u,
        });
    }
    let k = cands.len();
    let mut best: Option<f64> = None;
    // All n-subsets of candidates.
    let mut idx: Vec<usize> = (0..n).collect();
    loop {
        // Try to solve the square system for this tight set.
        let mut m = DenseMatrix::zeros(n);
        let mut b = vec![0.0; n];
        for (r, &ci) in idx.iter().enumerate() {
            for j in 0..n {
                m.set(r, j, cands[ci].coeffs[j]);
            }
            b[r] = cands[ci].value;
        }
        if let Ok(xs) = solve_dense(&m, &[b]) {
            let x = &xs[0];
            // Feasibility check.
            let tol = 1e-7;
            let mut ok = true;
            for (j, &(l, u)) in var_bounds.iter().enumerate() {
                if x[j] < l - tol || x[j] > u + tol {
                    ok = false;
                    break;
                }
            }
            if ok {
                for (c, l, u) in rows {
                    let act: f64 = c.iter().zip(x).map(|(a, b)| a * b).sum();
                    if act < l - tol || act > u + tol {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                let v: f64 = obj.iter().zip(x).map(|(a, b)| a * b).sum();
                best = Some(match best {
                    None => v,
                    Some(bv) => bv.max(v),
                });
            }
        }
        // Next combination.
        let mut i = n;
        loop {
            if i == 0 {
                return best;
            }
            i -= 1;
            if idx[i] + (n - i) < k {
                idx[i] += 1;
                for j in (i + 1)..n {
                    idx[j] = idx[j - 1] + 1;
                }
                break;
            }
        }
    }
}

/// A randomly drawn small LP instance.
#[derive(Debug, Clone)]
struct SmallLp {
    n: usize,
    obj: Vec<f64>,
    bounds: Vec<(f64, f64)>,
    rows: Vec<(Vec<f64>, f64, f64)>,
}

fn gen_small_lp(rng: &mut Pcg32) -> SmallLp {
    let n = rng.range_usize_inclusive(2, 3);
    let obj: Vec<f64> = (0..n).map(|_| rng.range_f64(-5.0, 5.0)).collect();
    let bounds: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.range_f64(0.0, 2.0), rng.range_f64(2.5, 6.0)))
        .collect();
    let nrows = rng.range_usize_inclusive(1, 3);
    let rows: Vec<(Vec<f64>, f64, f64)> = (0..nrows)
        .map(|_| {
            let c: Vec<f64> = (0..n).map(|_| rng.range_f64(-3.0, 3.0)).collect();
            (c, rng.range_f64(-10.0, 0.0), rng.range_f64(1.0, 12.0))
        })
        .collect();
    SmallLp {
        n,
        obj,
        bounds,
        rows,
    }
}

fn build(inst: &SmallLp) -> LpProblem {
    let mut lp = LpProblem::new(Sense::Maximize);
    let vars: Vec<_> = (0..inst.n)
        .map(|j| lp.add_var(inst.bounds[j].0, inst.bounds[j].1, inst.obj[j]))
        .collect();
    for (c, l, u) in &inst.rows {
        lp.add_row(vars.iter().zip(c).map(|(&v, &a)| (v, a)), *l, *u);
    }
    lp
}

/// Dropping rows one at a time keeps counterexamples minimal.
fn shrink_rows(inst: &SmallLp) -> Vec<SmallLp> {
    (0..inst.rows.len())
        .filter(|_| inst.rows.len() > 1)
        .map(|i| {
            let mut s = inst.clone();
            s.rows.remove(i);
            s
        })
        .collect()
}

#[test]
fn simplex_matches_vertex_enumeration() {
    forall(
        "simplex_matches_vertex_enumeration",
        &Config {
            cases: 200,
            ..Config::default()
        },
        gen_small_lp,
        shrink_rows,
        |inst| {
            let sol = build(inst).solve().unwrap();
            match brute_force(inst.n, &inst.obj, &inst.bounds, &inst.rows) {
                Some(best) => {
                    if sol.status != Status::Optimal {
                        return Err(format!("expected optimal, got {}", sol.status));
                    }
                    if (sol.objective - best).abs() > 1e-5 * (1.0 + best.abs()) {
                        return Err(format!("simplex {} vs brute force {best}", sol.objective));
                    }
                }
                None => {
                    if sol.status != Status::Infeasible {
                        return Err(format!("expected infeasible, got {}", sol.status));
                    }
                }
            }
            Ok(())
        },
    );
}

/// Incremental warm-started re-solves must agree with building the final
/// model from scratch: solve a base LP, append the remaining rows, re-solve,
/// and compare against a one-shot solve of the full model.
#[test]
fn incremental_append_matches_scratch() {
    forall(
        "incremental_append_matches_scratch",
        &Config {
            cases: 200,
            ..Config::default()
        },
        |rng| {
            let mut inst = gen_small_lp(rng);
            // Ensure at least one row remains to be appended incrementally.
            if inst.rows.len() < 2 {
                let c: Vec<f64> = (0..inst.n).map(|_| rng.range_f64(-3.0, 3.0)).collect();
                inst.rows
                    .push((c, rng.range_f64(-10.0, 0.0), rng.range_f64(1.0, 12.0)));
            }
            let split = rng.range_usize(1, inst.rows.len());
            (inst, split)
        },
        no_shrink,
        |(inst, split)| {
            let scratch = build(inst).solve().unwrap();

            let mut base = inst.clone();
            let appended: Vec<_> = base.rows.split_off(*split);
            let mut inc = IncrementalLp::new(build(&base));
            inc.solve().unwrap();
            for (c, l, u) in &appended {
                let vars: Vec<_> = (0..inst.n).map(pcf_lp::VarId).collect();
                inc.add_row(vars.iter().zip(c).map(|(&v, &a)| (v, a)), *l, *u);
            }
            let warm = inc.solve().unwrap();

            if warm.status != scratch.status {
                return Err(format!(
                    "status diverged: warm {} vs scratch {}",
                    warm.status, scratch.status
                ));
            }
            if scratch.status == Status::Optimal
                && (warm.objective - scratch.objective).abs()
                    > 1e-7 * (1.0 + scratch.objective.abs())
            {
                return Err(format!(
                    "objective diverged: warm {} vs scratch {}",
                    warm.objective, scratch.objective
                ));
            }
            Ok(())
        },
    );
}

#[test]
fn dense_random_feasible_lps_are_solved_exactly() {
    // Deterministic seeds across a grid of sizes; checks objective against
    // brute force for n=3 with two rows.
    type Case = (Vec<f64>, Vec<(f64, f64)>, Vec<(Vec<f64>, f64, f64)>);
    let cases: &[Case] = &[
        (
            vec![1.0, 2.0, -1.0],
            vec![(0.0, 4.0), (0.0, 4.0), (0.0, 4.0)],
            vec![
                (vec![1.0, 1.0, 1.0], -10.0, 6.0),
                (vec![1.0, -1.0, 0.0], -2.0, 2.0),
            ],
        ),
        (
            vec![-1.0, -1.0, 3.0],
            vec![(1.0, 3.0), (0.0, 2.0), (0.0, 5.0)],
            vec![(vec![2.0, 1.0, -1.0], 0.0, 4.0)],
        ),
    ];
    for (obj, bounds, rows) in cases {
        let n = obj.len();
        let mut lp = LpProblem::new(Sense::Maximize);
        let vars: Vec<_> = (0..n)
            .map(|j| lp.add_var(bounds[j].0, bounds[j].1, obj[j]))
            .collect();
        for (c, l, u) in rows {
            lp.add_row(vars.iter().zip(c).map(|(&v, &a)| (v, a)), *l, *u);
        }
        let sol = lp.solve().unwrap();
        let best = brute_force(n, obj, bounds, rows).expect("feasible by construction");
        assert!(
            (sol.objective - best).abs() <= 1e-6 * (1.0 + best.abs()),
            "simplex {} vs brute {}",
            sol.objective,
            best
        );
    }
}
