//! Linear program model builder.
//!
//! [`LpProblem`] collects variables (with bounds and objective coefficients)
//! and linear constraints (with lower/upper row activity bounds), then hands
//! the model to the simplex solver via [`LpProblem::solve`].
//!
//! All of the PCF paper's offline models — FFC, PCF-TF, PCF-LS, PCF-CLS,
//! logical flows, R3, and the per-scenario optimal multi-commodity flow —
//! are instances built through this interface.

use crate::simplex::{self, SimplexOptions};
use std::fmt;

/// Handle to a variable in an [`LpProblem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub usize);

/// Handle to a constraint (row) in an [`LpProblem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RowId(pub usize);

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// Maximize the objective.
    Maximize,
    /// Minimize the objective.
    Minimize,
}

/// Solver outcome classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// An optimal solution was found.
    Optimal,
    /// The constraints admit no solution.
    Infeasible,
    /// The objective is unbounded over the feasible region.
    Unbounded,
    /// The iteration limit was exceeded before convergence.
    IterationLimit,
}

impl fmt::Display for Status {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Status::Optimal => "optimal",
            Status::Infeasible => "infeasible",
            Status::Unbounded => "unbounded",
            Status::IterationLimit => "iteration limit",
        };
        f.write_str(s)
    }
}

/// Result of [`LpProblem::solve`].
#[derive(Debug, Clone)]
pub struct Solution {
    /// Outcome classification; values below are meaningful for
    /// [`Status::Optimal`] only.
    pub status: Status,
    /// Objective value in the problem's own sense.
    pub objective: f64,
    /// Value of each variable, indexed by [`VarId`].
    pub x: Vec<f64>,
    /// Row duals, indexed by [`RowId`]: `duals[i]` is d(objective)/d(rhs_i)
    /// in the problem's own sense (so for a maximization, relaxing a binding
    /// `<=` row by one unit increases the objective by `duals[i]`). Zero for
    /// inactive rows; all zeros unless the status is [`Status::Optimal`].
    pub duals: Vec<f64>,
    /// Simplex iterations spent (phase 1 + phase 2).
    pub iterations: usize,
}

impl Solution {
    /// Value of variable `v`.
    pub fn value(&self, v: VarId) -> f64 {
        self.x[v.0]
    }

    /// Dual value of row `r`; see [`Solution::duals`].
    pub fn dual(&self, r: RowId) -> f64 {
        self.duals[r.0]
    }

    /// Whether the solve reached a provably optimal solution.
    pub fn is_optimal(&self) -> bool {
        self.status == Status::Optimal
    }
}

/// One linear constraint: `lower <= sum(coef * var) <= upper`.
#[derive(Debug, Clone)]
pub(crate) struct Row {
    pub coeffs: Vec<(usize, f64)>,
    pub lower: f64,
    pub upper: f64,
}

/// A linear program under construction.
///
/// # Example
///
/// ```
/// use pcf_lp::{LpProblem, Sense};
///
/// // max x + 2y  s.t.  x + y <= 4,  y <= 3,  x,y >= 0
/// let mut lp = LpProblem::new(Sense::Maximize);
/// let x = lp.add_var(0.0, f64::INFINITY, 1.0);
/// let y = lp.add_var(0.0, 3.0, 2.0);
/// lp.add_le(vec![(x, 1.0), (y, 1.0)], 4.0);
/// let sol = lp.solve().unwrap();
/// assert!((sol.objective - 7.0).abs() < 1e-9);
/// assert!((sol.value(x) - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct LpProblem {
    pub(crate) sense: Sense,
    pub(crate) obj: Vec<f64>,
    pub(crate) lower: Vec<f64>,
    pub(crate) upper: Vec<f64>,
    pub(crate) rows: Vec<Row>,
    options: SimplexOptions,
}

impl LpProblem {
    /// Creates an empty problem optimizing in the given sense.
    pub fn new(sense: Sense) -> Self {
        LpProblem {
            sense,
            obj: Vec::new(),
            lower: Vec::new(),
            upper: Vec::new(),
            rows: Vec::new(),
            options: SimplexOptions::default(),
        }
    }

    /// Overrides solver options (tolerances, iteration limit).
    pub fn set_options(&mut self, options: SimplexOptions) {
        self.options = options;
    }

    /// Current solver options.
    pub(crate) fn options(&self) -> &SimplexOptions {
        &self.options
    }

    /// Adds a variable with bounds `[lower, upper]` and objective coefficient
    /// `obj`. `lower` may be `f64::NEG_INFINITY` (free below) and `upper` may
    /// be `f64::INFINITY`.
    ///
    /// # Panics
    /// Panics if `lower > upper` or either bound is NaN.
    pub fn add_var(&mut self, lower: f64, upper: f64, obj: f64) -> VarId {
        // audit:allow(panic-reachability, construction guard; scheme builders only pass finite bounds derived from validated instances)
        assert!(!lower.is_nan() && !upper.is_nan(), "NaN variable bound");
        // audit:allow(panic-reachability, construction guard; scheme builders only pass finite bounds derived from validated instances)
        assert!(lower <= upper, "empty variable domain [{lower}, {upper}]");
        // audit:allow(panic-reachability, construction guard; scheme builders only pass finite bounds derived from validated instances)
        assert!(obj.is_finite(), "objective coefficient must be finite");
        let id = VarId(self.obj.len());
        self.obj.push(obj);
        self.lower.push(lower);
        self.upper.push(upper);
        id
    }

    /// Shorthand for a variable in `[0, +inf)`.
    pub fn add_nonneg(&mut self, obj: f64) -> VarId {
        self.add_var(0.0, f64::INFINITY, obj)
    }

    /// Number of variables so far.
    pub fn num_vars(&self) -> usize {
        self.obj.len()
    }

    /// Number of constraints so far.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Changes the objective coefficient of an existing variable.
    pub fn set_objective(&mut self, v: VarId, obj: f64) {
        assert!(obj.is_finite());
        self.obj[v.0] = obj;
    }

    /// Adds a range constraint `lower <= expr <= upper`.
    ///
    /// Duplicate variable mentions are summed. Rows with `lower = -inf` and
    /// `upper = +inf` are accepted (and vacuous).
    ///
    /// # Panics
    /// Panics if a referenced variable does not exist, a coefficient is not
    /// finite, or `lower > upper`.
    pub fn add_row(
        &mut self,
        coeffs: impl IntoIterator<Item = (VarId, f64)>,
        lower: f64,
        upper: f64,
    ) -> RowId {
        // audit:allow(panic-reachability, construction guard; scheme builders only pass finite bounds derived from validated instances)
        assert!(!lower.is_nan() && !upper.is_nan(), "NaN row bound");
        // audit:allow(panic-reachability, construction guard; scheme builders only pass finite bounds derived from validated instances)
        assert!(lower <= upper, "empty row range [{lower}, {upper}]");
        // Accumulate duplicates (index-keyed so large rows stay O(k)).
        let mut acc: Vec<(usize, f64)> = Vec::new();
        let mut slot_of: std::collections::BTreeMap<usize, usize> =
            std::collections::BTreeMap::new();
        for (v, c) in coeffs {
            // audit:allow(panic-reachability, construction guard; VarIds come from this model's own add_var returns)
            assert!(v.0 < self.obj.len(), "row references unknown variable");
            // audit:allow(panic-reachability, construction guard; coefficients are finite by instance validation)
            assert!(c.is_finite(), "row coefficient must be finite");
            if crate::float::is_zero(c) {
                continue;
            }
            match slot_of.entry(v.0) {
                std::collections::btree_map::Entry::Occupied(e) => acc[*e.get()].1 += c,
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(acc.len());
                    acc.push((v.0, c));
                }
            }
        }
        let id = RowId(self.rows.len());
        self.rows.push(Row {
            coeffs: acc,
            lower,
            upper,
        });
        id
    }

    /// Adds `expr <= rhs`.
    pub fn add_le(&mut self, coeffs: impl IntoIterator<Item = (VarId, f64)>, rhs: f64) -> RowId {
        self.add_row(coeffs, f64::NEG_INFINITY, rhs)
    }

    /// Adds `expr >= rhs`.
    pub fn add_ge(&mut self, coeffs: impl IntoIterator<Item = (VarId, f64)>, rhs: f64) -> RowId {
        self.add_row(coeffs, rhs, f64::INFINITY)
    }

    /// Adds `expr == rhs`.
    pub fn add_eq(&mut self, coeffs: impl IntoIterator<Item = (VarId, f64)>, rhs: f64) -> RowId {
        self.add_row(coeffs, rhs, rhs)
    }

    /// Solves the problem with the primal simplex method.
    ///
    /// Returns `Err` only for structurally broken models (currently never —
    /// panics guard construction); solver outcomes, including infeasibility
    /// and unboundedness, are reported through [`Solution::status`].
    pub fn solve(&self) -> Result<Solution, SolveError> {
        Ok(simplex::solve(self, &self.options))
    }
}

/// Error from [`LpProblem::solve`]. Reserved for future structural checks;
/// solver outcomes are reported via [`Status`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SolveError(pub String);

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LP solve error: {}", self.0)
    }
}

impl std::error::Error for SolveError {}
