//! Problem instances: a topology, demands, tunnels, and logical sequences.
//!
//! Every PCF/FFC model in this crate operates on an [`Instance`]: the pair
//! set of interest, the physical tunnels `T(s,t)` serving each pair, and the
//! logical sequences `L(s,t)` (paper §3.1, §3.3). The instance also indexes
//! `Q(s,t)` — the logical sequences that use `(s,t)` as a segment — which
//! appears on the right-hand side of the reservation constraints (7).

use crate::failure::Condition;
use pcf_paths::{select_tunnels, Path};
use pcf_topology::{NodeId, Topology};
use pcf_traffic::TrafficMatrix;
use std::collections::HashMap;

/// Index of an ordered node pair within an [`Instance`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PairId(pub usize);

/// Index of a tunnel within an [`Instance`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TunnelId(pub usize);

/// Index of a logical sequence within an [`Instance`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LsId(pub usize);

/// A logical sequence (paper §3.3): traffic from `hops.first()` to
/// `hops.last()` traverses every hop in order; each consecutive hop pair is
/// a *logical segment* served recursively by that pair's tunnels and logical
/// sequences. A conditional LS only guarantees its reservation when
/// `condition` holds (§3.4).
#[derive(Debug, Clone, PartialEq)]
pub struct LogicalSequence {
    /// Logical hops, source first, destination last; at least 3 entries
    /// (a 2-hop "sequence" would be its own segment, which is vacuous).
    pub hops: Vec<NodeId>,
    /// Activation condition.
    pub condition: Condition,
}

impl LogicalSequence {
    /// An unconditional LS through the given hops.
    pub fn always(hops: Vec<NodeId>) -> Self {
        LogicalSequence {
            hops,
            condition: Condition::Always,
        }
    }

    /// Source node.
    ///
    /// # Panics
    /// Panics on a malformed hop-less LS; `InstanceBuilder` rejects those.
    pub fn source(&self) -> NodeId {
        // audit:allow(no-panic-paths, documented contract; InstanceBuilder rejects hop-less sequences) audit:allow(panic-reachability, same invariant: every LS reaching solvers came through the builder)
        *self.hops.first().expect("LS has hops")
    }

    /// Destination node.
    ///
    /// # Panics
    /// Panics on a malformed hop-less LS; `InstanceBuilder` rejects those.
    pub fn dest(&self) -> NodeId {
        // audit:allow(no-panic-paths, documented contract; InstanceBuilder rejects hop-less sequences) audit:allow(panic-reachability, same invariant: every LS reaching solvers came through the builder)
        *self.hops.last().expect("LS has hops")
    }

    /// The ordered segments (consecutive hop pairs).
    pub fn segments(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.hops.windows(2).map(|w| (w[0], w[1]))
    }
}

/// A fully indexed problem instance. Build with [`InstanceBuilder`].
#[derive(Debug, Clone)]
pub struct Instance {
    topo: Topology,
    pairs: Vec<(NodeId, NodeId)>,
    pair_index: HashMap<(NodeId, NodeId), PairId>,
    demand: Vec<f64>,
    tunnels: Vec<Path>,
    tunnel_pair: Vec<PairId>,
    tunnels_of: Vec<Vec<TunnelId>>,
    lss: Vec<LogicalSequence>,
    ls_pair: Vec<PairId>,
    lss_of: Vec<Vec<LsId>>,      // L(s,t)
    segments_of: Vec<Vec<LsId>>, // Q(s,t)
}

impl Instance {
    /// The topology.
    pub fn topo(&self) -> &Topology {
        &self.topo
    }

    /// Number of pairs of interest.
    pub fn num_pairs(&self) -> usize {
        self.pairs.len()
    }

    /// Number of tunnels across all pairs.
    pub fn num_tunnels(&self) -> usize {
        self.tunnels.len()
    }

    /// Number of logical sequences.
    pub fn num_lss(&self) -> usize {
        self.lss.len()
    }

    /// All pair ids.
    pub fn pair_ids(&self) -> impl Iterator<Item = PairId> {
        (0..self.pairs.len()).map(PairId)
    }

    /// The `(source, dest)` nodes of a pair.
    pub fn pair(&self, p: PairId) -> (NodeId, NodeId) {
        self.pairs[p.0]
    }

    /// Looks up the pair id for `(s, t)`, if it is a pair of interest.
    pub fn pair_id(&self, s: NodeId, t: NodeId) -> Option<PairId> {
        self.pair_index.get(&(s, t)).copied()
    }

    /// Demand of a pair (zero for pure segment pairs).
    pub fn demand(&self, p: PairId) -> f64 {
        self.demand[p.0]
    }

    /// Total demand over all pairs.
    pub fn total_demand(&self) -> f64 {
        self.demand.iter().sum()
    }

    /// Tunnel ids of `T(s,t)`.
    pub fn tunnels_of(&self, p: PairId) -> &[TunnelId] {
        &self.tunnels_of[p.0]
    }

    /// The path of tunnel `l`.
    pub fn tunnel(&self, l: TunnelId) -> &Path {
        &self.tunnels[l.0]
    }

    /// The pair a tunnel belongs to.
    pub fn tunnel_pair(&self, l: TunnelId) -> PairId {
        self.tunnel_pair[l.0]
    }

    /// All tunnel ids.
    pub fn tunnel_ids(&self) -> impl Iterator<Item = TunnelId> {
        (0..self.tunnels.len()).map(TunnelId)
    }

    /// LS ids of `L(s,t)`.
    pub fn lss_of(&self, p: PairId) -> &[LsId] {
        &self.lss_of[p.0]
    }

    /// LS ids of `Q(s,t)`: sequences that use `(s,t)` as a segment.
    pub fn segments_of(&self, p: PairId) -> &[LsId] {
        &self.segments_of[p.0]
    }

    /// The logical sequence `q`.
    pub fn ls(&self, q: LsId) -> &LogicalSequence {
        &self.lss[q.0]
    }

    /// The pair an LS connects (its endpoints).
    pub fn ls_pair(&self, q: LsId) -> PairId {
        self.ls_pair[q.0]
    }

    /// All LS ids.
    pub fn ls_ids(&self) -> impl Iterator<Item = LsId> {
        (0..self.lss.len()).map(LsId)
    }

    /// `p_st` (paper §2): the maximum number of tunnels of this pair that
    /// share a common link. 1 when the pair's tunnels are disjoint, 0 when
    /// the pair has no tunnels.
    pub fn p_st(&self, p: PairId) -> usize {
        let mut usage: HashMap<u32, usize> = HashMap::new();
        for &l in &self.tunnels_of[p.0] {
            for link in &self.tunnels[l.0].links {
                *usage.entry(link.0).or_insert(0) += 1;
            }
        }
        usage.values().copied().max().unwrap_or(0)
    }
}

/// Builder for [`Instance`].
///
/// Pairs of interest are the demand pairs, LS endpoint pairs, and LS segment
/// pairs. Tunnels are selected per pair with
/// [`pcf_paths::select_tunnels`] unless provided explicitly.
pub struct InstanceBuilder {
    topo: Topology,
    demands: Vec<(NodeId, NodeId, f64)>,
    tunnels_per_pair: usize,
    auto_tunnels: bool,
    explicit_tunnels: Vec<Path>,
    extra_pairs: Vec<(NodeId, NodeId)>,
    lss: Vec<LogicalSequence>,
}

impl InstanceBuilder {
    /// Starts a builder over `topo` with demands from `tm` (strictly
    /// positive entries only).
    pub fn new(topo: &Topology, tm: &TrafficMatrix) -> Self {
        assert_eq!(
            topo.node_count(),
            tm.node_count(),
            "traffic matrix does not match topology"
        );
        InstanceBuilder {
            topo: topo.clone(),
            demands: tm.positive_pairs().into_iter().collect(),
            tunnels_per_pair: 3,
            auto_tunnels: true,
            explicit_tunnels: Vec::new(),
            extra_pairs: Vec::new(),
            lss: Vec::new(),
        }
    }

    /// Starts a builder with an explicit demand list (used by the paper's
    /// single-pair examples).
    pub fn with_demands(topo: &Topology, demands: Vec<(NodeId, NodeId, f64)>) -> Self {
        for &(s, t, d) in &demands {
            assert!(
                s != t && d > 0.0,
                "demands must be off-diagonal and positive"
            );
        }
        InstanceBuilder {
            topo: topo.clone(),
            demands,
            tunnels_per_pair: 3,
            auto_tunnels: true,
            explicit_tunnels: Vec::new(),
            extra_pairs: Vec::new(),
            lss: Vec::new(),
        }
    }

    /// Number of tunnels to select per pair (paper: 2–6). Default 3.
    pub fn tunnels_per_pair(mut self, k: usize) -> Self {
        self.tunnels_per_pair = k;
        self
    }

    /// Registers `(s, t)` as a pair of interest even without demand or LS
    /// membership (used by the logical-flow model for segment pairs, which
    /// must carry reservations). The pair gets tunnels like any other.
    pub fn add_pair(mut self, s: NodeId, t: NodeId) -> Self {
        assert!(s != t, "pair endpoints must differ");
        self.extra_pairs.push((s, t));
        self
    }

    /// Disables automatic tunnel selection: only explicitly added tunnels
    /// are used, and pairs without any tunnel get none (used by the paper's
    /// examples where the tunnel set is part of the construction).
    pub fn no_auto_tunnels(mut self) -> Self {
        self.auto_tunnels = false;
        self
    }

    /// Supplies explicit tunnels instead of automatic selection for their
    /// endpoint pairs. Pairs without any explicit tunnel still get automatic
    /// selection (unless [`InstanceBuilder::no_auto_tunnels`] is set).
    pub fn add_tunnel(mut self, path: Path) -> Self {
        assert!(!path.is_empty(), "tunnel must have at least one link");
        self.explicit_tunnels.push(path);
        self
    }

    /// Adds a logical sequence. Hops must be at least 3 nodes and
    /// consecutive hops must differ.
    pub fn add_ls(mut self, ls: LogicalSequence) -> Self {
        assert!(ls.hops.len() >= 3, "LS needs at least one intermediate hop");
        for w in ls.hops.windows(2) {
            assert!(w[0] != w[1], "LS hops must not repeat consecutively");
        }
        self.lss.push(ls);
        self
    }

    /// Builds the indexed instance.
    pub fn build(self) -> Instance {
        let mut pairs: Vec<(NodeId, NodeId)> = Vec::new();
        let mut pair_index: HashMap<(NodeId, NodeId), PairId> = HashMap::new();
        let mut demand: Vec<f64> = Vec::new();
        let intern = |s: NodeId,
                      t: NodeId,
                      pairs: &mut Vec<(NodeId, NodeId)>,
                      demand: &mut Vec<f64>,
                      pair_index: &mut HashMap<(NodeId, NodeId), PairId>|
         -> PairId {
            *pair_index.entry((s, t)).or_insert_with(|| {
                pairs.push((s, t));
                demand.push(0.0);
                PairId(pairs.len() - 1)
            })
        };
        for &(s, t, d) in &self.demands {
            let p = intern(s, t, &mut pairs, &mut demand, &mut pair_index);
            demand[p.0] += d;
        }
        for &(s, t) in &self.extra_pairs {
            intern(s, t, &mut pairs, &mut demand, &mut pair_index);
        }
        for ls in &self.lss {
            intern(
                ls.source(),
                ls.dest(),
                &mut pairs,
                &mut demand,
                &mut pair_index,
            );
            for (u, v) in ls.segments() {
                intern(u, v, &mut pairs, &mut demand, &mut pair_index);
            }
        }

        // Tunnels: explicit ones first (their pairs skip auto-selection).
        let mut tunnels: Vec<Path> = Vec::new();
        let mut tunnel_pair: Vec<PairId> = Vec::new();
        let mut tunnels_of: Vec<Vec<TunnelId>> = vec![Vec::new(); pairs.len()];
        let mut has_explicit = vec![false; pairs.len()];
        for path in &self.explicit_tunnels {
            let p = intern(
                path.source(),
                path.dest(),
                &mut pairs,
                &mut demand,
                &mut pair_index,
            );
            if p.0 >= tunnels_of.len() {
                tunnels_of.resize(p.0 + 1, Vec::new());
                has_explicit.resize(p.0 + 1, false);
            }
            has_explicit[p.0] = true;
            let id = TunnelId(tunnels.len());
            tunnels.push(path.clone());
            tunnel_pair.push(p);
            tunnels_of[p.0].push(id);
        }
        for (pi, &(s, t)) in pairs.iter().enumerate() {
            if has_explicit[pi] || !self.auto_tunnels {
                continue;
            }
            for path in select_tunnels(&self.topo, s, t, self.tunnels_per_pair) {
                let id = TunnelId(tunnels.len());
                tunnels.push(path);
                tunnel_pair.push(PairId(pi));
                tunnels_of[pi].push(id);
            }
        }

        // Logical sequences.
        let mut lss: Vec<LogicalSequence> = Vec::new();
        let mut ls_pair: Vec<PairId> = Vec::new();
        let mut lss_of: Vec<Vec<LsId>> = vec![Vec::new(); pairs.len()];
        let mut segments_of: Vec<Vec<LsId>> = vec![Vec::new(); pairs.len()];
        for ls in self.lss {
            let id = LsId(lss.len());
            let p = pair_index[&(ls.source(), ls.dest())];
            lss_of[p.0].push(id);
            for (u, v) in ls.segments() {
                let sp = pair_index[&(u, v)];
                segments_of[sp.0].push(id);
            }
            ls_pair.push(p);
            lss.push(ls);
        }

        Instance {
            topo: self.topo,
            pairs,
            pair_index,
            demand,
            tunnels,
            tunnel_pair,
            tunnels_of,
            lss,
            ls_pair,
            lss_of,
            segments_of,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcf_topology::zoo;
    use pcf_traffic::gravity;

    #[test]
    fn builder_interns_demand_pairs() {
        let topo = zoo::build("Sprint");
        let tm = gravity(&topo, 1);
        let inst = InstanceBuilder::new(&topo, &tm).tunnels_per_pair(2).build();
        assert_eq!(inst.num_pairs(), 90); // 10 * 9 ordered pairs
        for p in inst.pair_ids() {
            assert!(inst.demand(p) > 0.0);
            assert!(!inst.tunnels_of(p).is_empty());
            let (s, t) = inst.pair(p);
            for &l in inst.tunnels_of(p) {
                assert_eq!(inst.tunnel(l).source(), s);
                assert_eq!(inst.tunnel(l).dest(), t);
                assert_eq!(inst.tunnel_pair(l), p);
            }
        }
    }

    #[test]
    fn ls_segments_create_pairs_and_q_index() {
        let topo = zoo::build("Sprint");
        let demands = vec![(NodeId(0), NodeId(5), 1.0)];
        let hops = vec![NodeId(0), NodeId(2), NodeId(5)];
        let inst = InstanceBuilder::with_demands(&topo, demands)
            .add_ls(LogicalSequence::always(hops))
            .build();
        // Pairs: (0,5) + segments (0,2), (2,5).
        assert_eq!(inst.num_pairs(), 3);
        let q = LsId(0);
        let p05 = inst.pair_id(NodeId(0), NodeId(5)).unwrap();
        let p02 = inst.pair_id(NodeId(0), NodeId(2)).unwrap();
        let p25 = inst.pair_id(NodeId(2), NodeId(5)).unwrap();
        assert_eq!(inst.lss_of(p05), &[q]);
        assert_eq!(inst.segments_of(p02), &[q]);
        assert_eq!(inst.segments_of(p25), &[q]);
        assert!(inst.segments_of(p05).is_empty());
        assert_eq!(inst.demand(p02), 0.0);
        // Segment pairs still get tunnels to support reservations.
        assert!(!inst.tunnels_of(p02).is_empty());
    }

    #[test]
    fn p_st_counts_max_overlap() {
        let topo = zoo::build("Sprint");
        let tm = gravity(&topo, 1);
        let inst = InstanceBuilder::new(&topo, &tm).tunnels_per_pair(2).build();
        for p in inst.pair_ids() {
            // Paper: every pair has two disjoint tunnels in these topologies.
            assert_eq!(inst.p_st(p), 1, "pair {:?}", inst.pair(p));
        }
    }

    #[test]
    fn explicit_tunnels_override_selection() {
        let topo = zoo::build("Sprint");
        let demands = vec![(NodeId(0), NodeId(5), 1.0)];
        let path = pcf_paths::shortest_path(&topo, NodeId(0), NodeId(5)).unwrap();
        let inst = InstanceBuilder::with_demands(&topo, demands)
            .add_tunnel(path.clone())
            .build();
        let p = inst.pair_id(NodeId(0), NodeId(5)).unwrap();
        assert_eq!(inst.tunnels_of(p).len(), 1);
        assert_eq!(inst.tunnel(inst.tunnels_of(p)[0]), &path);
    }

    #[test]
    #[should_panic(expected = "at least one intermediate hop")]
    fn two_hop_ls_rejected() {
        let topo = zoo::build("Sprint");
        let demands = vec![(NodeId(0), NodeId(5), 1.0)];
        let _ = InstanceBuilder::with_demands(&topo, demands)
            .add_ls(LogicalSequence::always(vec![NodeId(0), NodeId(5)]));
    }

    #[test]
    fn duplicate_demands_are_summed() {
        let topo = zoo::build("Sprint");
        let demands = vec![(NodeId(0), NodeId(5), 1.0), (NodeId(0), NodeId(5), 2.0)];
        let inst = InstanceBuilder::with_demands(&topo, demands).build();
        let p = inst.pair_id(NodeId(0), NodeId(5)).unwrap();
        assert_eq!(inst.demand(p), 3.0);
        assert_eq!(inst.total_demand(), 3.0);
    }
}

#[cfg(test)]
mod builder_tests {
    use super::*;
    use pcf_topology::zoo;

    #[test]
    fn extra_pairs_are_interned_with_tunnels() {
        let topo = zoo::build("Sprint");
        let inst = InstanceBuilder::with_demands(&topo, vec![(NodeId(0), NodeId(5), 1.0)])
            .add_pair(NodeId(2), NodeId(7))
            .tunnels_per_pair(2)
            .build();
        let p = inst
            .pair_id(NodeId(2), NodeId(7))
            .expect("extra pair interned");
        assert_eq!(inst.demand(p), 0.0);
        assert_eq!(inst.tunnels_of(p).len(), 2);
    }

    #[test]
    fn no_auto_tunnels_leaves_pairs_bare() {
        let topo = zoo::build("Sprint");
        let inst = InstanceBuilder::with_demands(&topo, vec![(NodeId(0), NodeId(5), 1.0)])
            .no_auto_tunnels()
            .build();
        assert_eq!(inst.num_tunnels(), 0);
        assert_eq!(inst.num_pairs(), 1);
    }

    #[test]
    fn ordered_pairs_are_distinct() {
        // (s,t) and (t,s) are different pairs with their own tunnels.
        let topo = zoo::build("Sprint");
        let inst = InstanceBuilder::with_demands(
            &topo,
            vec![(NodeId(0), NodeId(5), 1.0), (NodeId(5), NodeId(0), 2.0)],
        )
        .tunnels_per_pair(2)
        .build();
        assert_eq!(inst.num_pairs(), 2);
        let p0 = inst.pair_id(NodeId(0), NodeId(5)).unwrap();
        let p1 = inst.pair_id(NodeId(5), NodeId(0)).unwrap();
        assert_ne!(p0, p1);
        assert_eq!(inst.demand(p0), 1.0);
        assert_eq!(inst.demand(p1), 2.0);
        // Tunnels are directional: sources must match.
        for &l in inst.tunnels_of(p1) {
            assert_eq!(inst.tunnel(l).source(), NodeId(5));
        }
    }
}
