//! Property tests for the sparse basis engine and the presolve round-trip.
//!
//! The dense LU in `linsys` is the reference implementation: the sparse
//! engine's dense-compat factorization must be *bit-identical* to it (the
//! replay cache depends on that), the Markowitz factorization must agree
//! to rounding, eta updates must track refactorization, and
//! presolve∘postsolve must be the identity on objective, row feasibility,
//! and the dual pricing relation.

use pcf_lp::{
    lu_factor, BasisEngine, CscMatrix, DenseMatrix, LpProblem, Sense, SimplexOptions, SparseLu,
    Status,
};
use pcf_rng::{forall, no_shrink, Config, Pcg32};

/// A random square matrix with controlled density, sometimes ill-scaled.
#[derive(Debug, Clone)]
struct RandMat {
    n: usize,
    /// Dense row-major entries (zeros included).
    a: Vec<f64>,
    rhs: Vec<f64>,
}

fn gen_mat(rng: &mut Pcg32) -> RandMat {
    let n = rng.range_usize_inclusive(2, 7);
    let density = rng.range_f64(0.3, 1.0);
    let mut a = vec![0.0; n * n];
    for (k, slot) in a.iter_mut().enumerate() {
        let (i, j) = (k / n, k % n);
        // Keep the diagonal mostly populated so singular draws stay rare
        // (the property still handles them).
        if i == j || rng.chance(density) {
            *slot = rng.range_f64(-4.0, 4.0);
        }
    }
    // Occasionally make a column tiny to probe near-singularity handling.
    if rng.chance(0.15) {
        let j = rng.range_usize(0, n);
        let scale = if rng.chance(0.5) { 1e-10 } else { 1e-14 };
        for i in 0..n {
            a[i * n + j] *= scale;
        }
    }
    let rhs = (0..n).map(|_| rng.range_f64(-10.0, 10.0)).collect();
    RandMat { n, a, rhs }
}

fn dense_of(m: &RandMat) -> DenseMatrix {
    let mut d = DenseMatrix::zeros(m.n);
    for i in 0..m.n {
        for j in 0..m.n {
            d.set(i, j, m.a[i * m.n + j]);
        }
    }
    d
}

fn csc_of(m: &RandMat) -> CscMatrix {
    let cols: Vec<Vec<(usize, f64)>> = (0..m.n)
        .map(|j| {
            (0..m.n)
                .filter(|&i| m.a[i * m.n + j] != 0.0)
                .map(|i| (i, m.a[i * m.n + j]))
                .collect()
        })
        .collect();
    CscMatrix::from_cols(m.n, &cols)
}

fn residual(m: &RandMat, x: &[f64], b: &[f64]) -> f64 {
    let mut worst = 0.0f64;
    for (i, &bi) in b.iter().enumerate().take(m.n) {
        let ax: f64 = (0..m.n).map(|j| m.a[i * m.n + j] * x[j]).sum();
        worst = worst.max((ax - bi).abs());
    }
    worst
}

fn mat_norm(m: &RandMat) -> f64 {
    m.a.iter().fold(1.0f64, |w, v| w.max(v.abs()))
}

#[test]
fn dense_compat_is_bit_identical_to_reference_lu() {
    forall(
        "dense_compat_is_bit_identical_to_reference_lu",
        &Config {
            cases: 300,
            ..Config::default()
        },
        gen_mat,
        no_shrink,
        |m| {
            let d = dense_of(m);
            let reference = lu_factor(&d);
            let sparse = SparseLu::factor_dense_compat(&d);
            match (reference, sparse) {
                (Err(_), Err(_)) => Ok(()), // agree on singularity
                (Ok(_), Err(e)) => Err(format!("sparse rejected what dense accepted: {e}")),
                (Err(e), Ok(_)) => Err(format!("sparse accepted what dense rejected: {e}")),
                (Ok(rf), Ok(sf)) => {
                    let xr = rf.solve(&m.rhs);
                    let xs = sf.solve(&m.rhs);
                    for (j, (a, b)) in xr.iter().zip(&xs).enumerate() {
                        if a.to_bits() != b.to_bits() {
                            return Err(format!("x[{j}] differs: {a:?} vs {b:?}"));
                        }
                    }
                    Ok(())
                }
            }
        },
    );
}

#[test]
fn markowitz_factorization_solves_to_rounding() {
    forall(
        "markowitz_factorization_solves_to_rounding",
        &Config {
            cases: 300,
            ..Config::default()
        },
        gen_mat,
        no_shrink,
        |m| {
            let csc = csc_of(m);
            let basis: Vec<usize> = (0..m.n).collect();
            match SparseLu::factor_basis(&csc, &basis) {
                Err(_) => Ok(()), // near-singular draws may be rejected
                Ok(f) => {
                    let x = f.solve(&m.rhs);
                    let r = residual(m, &x, &m.rhs);
                    // Scale-aware bound: ill-conditioned draws amplify
                    // roundoff through the solve.
                    let xmax = x.iter().fold(1.0f64, |w, v| w.max(v.abs()));
                    let tol = 1e-7 * mat_norm(m) * xmax;
                    if r > tol {
                        return Err(format!("residual {r} exceeds {tol}"));
                    }
                    Ok(())
                }
            }
        },
    );
}

#[test]
fn permuted_identity_factors_exactly() {
    forall(
        "permuted_identity_factors_exactly",
        &Config {
            cases: 100,
            ..Config::default()
        },
        |rng| {
            let n = rng.range_usize_inclusive(2, 12);
            let mut perm: Vec<usize> = (0..n).collect();
            rng.shuffle(&mut perm);
            let rhs: Vec<f64> = (0..n).map(|_| rng.range_f64(-8.0, 8.0)).collect();
            (perm, rhs)
        },
        no_shrink,
        |(perm, rhs)| {
            let n = perm.len();
            // Column j has a single 1.0 in row perm[j]: x[j] = rhs[perm[j]].
            let cols: Vec<Vec<(usize, f64)>> = perm.iter().map(|&i| vec![(i, 1.0)]).collect();
            let csc = CscMatrix::from_cols(n, &cols);
            let basis: Vec<usize> = (0..n).collect();
            let f = SparseLu::factor_basis(&csc, &basis)
                .map_err(|e| format!("permutation must factor: {e}"))?;
            let x = f.solve(rhs);
            for j in 0..n {
                if x[j].to_bits() != rhs[perm[j]].to_bits() {
                    return Err(format!("x[{j}] = {} != {}", x[j], rhs[perm[j]]));
                }
            }
            Ok(())
        },
    );
}

/// Eta updates after column replacements must agree with refactorizing the
/// updated basis from scratch.
#[test]
fn eta_updates_match_refactorization() {
    forall(
        "eta_updates_match_refactorization",
        &Config {
            cases: 150,
            ..Config::default()
        },
        |rng| {
            let n = rng.range_usize_inclusive(2, 6);
            // Pool of 2n well-scaled columns; basis starts as the first n.
            let ncols = 2 * n;
            let mut mat = RandMat {
                n,
                a: vec![0.0; n * ncols],
                rhs: (0..n).map(|_| rng.range_f64(-5.0, 5.0)).collect(),
            };
            for j in 0..ncols {
                for i in 0..n {
                    if i == j % n || rng.chance(0.6) {
                        mat.a[i * ncols + j] = rng.range_f64(-3.0, 3.0);
                    }
                }
            }
            let swaps = rng.range_usize_inclusive(1, 4);
            let plan: Vec<(usize, usize)> = (0..swaps)
                .map(|_| (rng.range_usize(0, n), rng.range_usize(n, ncols)))
                .collect();
            (mat, plan)
        },
        no_shrink,
        |(mat, plan)| {
            let n = mat.n;
            let ncols = 2 * n;
            let cols: Vec<Vec<(usize, f64)>> = (0..ncols)
                .map(|j| {
                    (0..n)
                        .filter(|&i| mat.a[i * ncols + j] != 0.0)
                        .map(|i| (i, mat.a[i * ncols + j]))
                        .collect()
                })
                .collect();
            let csc = CscMatrix::from_cols(n, &cols);
            let mut basis: Vec<usize> = (0..n).collect();
            let Ok(core) = SparseLu::factor_basis(&csc, &basis) else {
                return Ok(()); // singular start: nothing to track
            };
            let mut engine = BasisEngine::new(core);
            let mut scratch = Vec::new();
            for &(r, jin) in plan {
                // d = B^-1 a_jin via the engine, then replace column r.
                let mut d = vec![0.0; n];
                csc.gather_col(jin, &mut d);
                engine.ftran(&mut d, &mut scratch);
                if d[r].abs() < 1e-8 {
                    return Ok(()); // pivot too small; simplex would not pick it
                }
                engine.push_eta(r, &d);
                basis[r] = jin;
            }
            // Engine solve vs scratch refactorization of the final basis.
            let Ok(fresh) = SparseLu::factor_basis(&csc, &basis) else {
                return Ok(()); // updated basis became singular
            };
            let mut xe = mat.rhs.clone();
            engine.ftran(&mut xe, &mut scratch);
            let xf = fresh.solve(&mat.rhs);
            for j in 0..n {
                let err = (xe[j] - xf[j]).abs();
                let tol = 1e-6 * (1.0 + xf[j].abs());
                if err > tol {
                    return Err(format!("x[{j}]: eta {} vs fresh {}", xe[j], xf[j]));
                }
            }
            Ok(())
        },
    );
}

// ---- Presolve round-trip ----

#[derive(Debug, Clone)]
struct SmallLp {
    n: usize,
    sense: Sense,
    obj: Vec<f64>,
    bounds: Vec<(f64, f64)>,
    rows: Vec<(Vec<f64>, f64, f64)>, // dense coeffs (zeros allowed), lo, hi
}

fn gen_presolve_lp(rng: &mut Pcg32) -> SmallLp {
    let n = rng.range_usize_inclusive(2, 5);
    let sense = if rng.chance(0.5) {
        Sense::Maximize
    } else {
        Sense::Minimize
    };
    let obj: Vec<f64> = (0..n)
        .map(|_| {
            if rng.chance(0.25) {
                0.0 // zero-cost columns enable the implied-slack reduction
            } else {
                rng.range_f64(-5.0, 5.0)
            }
        })
        .collect();
    let bounds: Vec<(f64, f64)> = (0..n)
        .map(|_| {
            if rng.chance(0.15) {
                let v = rng.range_f64(0.0, 3.0);
                (v, v) // fixed variable
            } else {
                (rng.range_f64(0.0, 2.0), rng.range_f64(2.5, 6.0))
            }
        })
        .collect();
    let nrows = rng.range_usize_inclusive(1, 4);
    let mut rows: Vec<(Vec<f64>, f64, f64)> = (0..nrows)
        .map(|_| {
            let c: Vec<f64> = (0..n)
                .map(|_| {
                    if rng.chance(0.35) {
                        0.0 // sparsity creates singleton and empty columns
                    } else {
                        rng.range_f64(-3.0, 3.0)
                    }
                })
                .collect();
            (c, rng.range_f64(-10.0, 0.0), rng.range_f64(1.0, 12.0))
        })
        .collect();
    // Sometimes append an exact duplicate (scaled) of an existing row.
    if rng.chance(0.3) {
        let i = rng.range_usize(0, rows.len());
        let lambda = *rng.pick(&[2.0, -1.0, 0.5]);
        let (c, l, u) = rows[i].clone();
        let sc: Vec<f64> = c.iter().map(|&a| a * lambda).collect();
        let (mut sl, mut su) = (l * lambda, u * lambda);
        if lambda < 0.0 {
            std::mem::swap(&mut sl, &mut su);
        }
        // Widen so the duplicate is consistent with the original.
        rows.push((sc, sl - 1.0, su + 1.0));
    }
    SmallLp {
        n,
        sense,
        obj,
        bounds,
        rows,
    }
}

fn build_lp(inst: &SmallLp, presolve: bool) -> LpProblem {
    let mut lp = LpProblem::new(inst.sense);
    let vars: Vec<_> = (0..inst.n)
        .map(|j| lp.add_var(inst.bounds[j].0, inst.bounds[j].1, inst.obj[j]))
        .collect();
    for (c, l, u) in &inst.rows {
        lp.add_row(
            vars.iter()
                .zip(c)
                .filter(|(_, &a)| a != 0.0)
                .map(|(&v, &a)| (v, a)),
            *l,
            *u,
        );
    }
    if !presolve {
        lp.set_options(SimplexOptions {
            presolve: false,
            ..SimplexOptions::default()
        });
    }
    lp
}

#[test]
fn presolve_postsolve_is_identity_on_objective_and_duals() {
    forall(
        "presolve_postsolve_is_identity_on_objective_and_duals",
        &Config {
            cases: 300,
            ..Config::default()
        },
        gen_presolve_lp,
        no_shrink,
        |inst| {
            let with = build_lp(inst, true).solve().unwrap();
            let without = build_lp(inst, false).solve().unwrap();
            if with.status != without.status {
                return Err(format!(
                    "status diverged: presolve {} vs direct {}",
                    with.status, without.status
                ));
            }
            if with.status != Status::Optimal {
                return Ok(());
            }
            let tol = 1e-6 * (1.0 + without.objective.abs());
            if (with.objective - without.objective).abs() > tol {
                return Err(format!(
                    "objective diverged: presolve {} vs direct {}",
                    with.objective, without.objective
                ));
            }
            // Restored x must satisfy every original row and bound.
            for (j, &(l, u)) in inst.bounds.iter().enumerate() {
                if with.x[j] < l - 1e-6 || with.x[j] > u + 1e-6 {
                    return Err(format!("x[{j}] = {} outside [{l}, {u}]", with.x[j]));
                }
            }
            for (i, (c, l, u)) in inst.rows.iter().enumerate() {
                let act: f64 = c.iter().zip(&with.x).map(|(a, b)| a * b).sum();
                if act < l - 1e-5 || act > u + 1e-5 {
                    return Err(format!("row {i} activity {act} outside [{l}, {u}]"));
                }
            }
            // Dual pricing identity on strictly interior variables:
            // c_j == sum_i y_i a_ij whenever x_j is away from both bounds.
            for j in 0..inst.n {
                let (l, u) = inst.bounds[j];
                let margin = 1e-4 * (1.0 + with.x[j].abs());
                if with.x[j] - l < margin || u - with.x[j] < margin {
                    continue;
                }
                let priced: f64 = inst
                    .rows
                    .iter()
                    .enumerate()
                    .map(|(i, (c, _, _))| c[j] * with.duals[i])
                    .sum();
                let err = (inst.obj[j] - priced).abs();
                if err > 1e-5 * (1.0 + inst.obj[j].abs()) {
                    return Err(format!(
                        "dual identity broken at var {j}: c = {}, priced = {priced}",
                        inst.obj[j]
                    ));
                }
            }
            Ok(())
        },
    );
}
