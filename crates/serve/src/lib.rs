//! `pcf-serve`: an online serving daemon for solved PCF plans.
//!
//! The offline pipeline (`pcf-core`) produces a robust plan — tunnel and
//! logical-sequence reservations proven to survive every ≤f-link-failure
//! scenario. This crate keeps that plan *hot*: a std-only TCP daemon
//! speaks a line-delimited JSON protocol ([`protocol`]) for failure-event
//! ingestion, realization and utilization queries, admission control
//! answered from the stored dual bounds, and plan hot-swaps.
//!
//! Architecture (one module each):
//!
//! * [`plan`] — immutable solved [`PlanEpoch`]s behind the lock-free
//!   [`PlanCell`] generation/slot cell; the background solver publishes,
//!   readers poll one atomic.
//! * [`log`] — the append-only atomic [`EventLog`]; the only shared
//!   mutable state on the event path.
//! * [`server`] — the daemon: scoped connection threads with private
//!   replay engines over the epoch's shared factor cache, a solver
//!   thread, and flag-plus-poke shutdown.
//! * [`client`] — a pipelining client and a scripted-session driver.
//! * [`telemetry`] — wait-free counters/histograms and the
//!   [`ServeReport`] with its CI-comparable deterministic form.
//! * [`json`] — the dependency-free JSON used on the wire.
//!
//! Everything is safe Rust on `std` alone: no async runtime, no serde,
//! no external crates.

pub mod client;
pub mod json;
pub mod log;
pub mod plan;
pub mod protocol;
pub mod server;
pub mod telemetry;

pub use client::{run_script, ClientError, ScriptReport, ServeClient};
pub use json::{Json, JsonError};
pub use log::{EventLog, LogEvent, LogFull};
pub use plan::{PlanCell, PlanEpoch, PlanSpec, SchemeKind};
pub use protocol::{error_response, parse_request, Request};
pub use server::{ServeOptions, Server};
pub use telemetry::{AtomicHistogram, ServeReport, Stopwatch, Telemetry};

/// A serving-side failure: transport, plan construction, or the robust
/// engine itself.
#[derive(Debug)]
pub enum ServeError {
    /// Socket-level failure (bind, accept).
    Io(std::io::Error),
    /// The plan spec could not be solved into an epoch.
    BadSpec(String),
    /// The robust engine failed while solving an epoch.
    Solve(pcf_core::RobustError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "i/o error: {e}"),
            ServeError::BadSpec(what) => write!(f, "bad plan spec: {what}"),
            ServeError::Solve(e) => write!(f, "epoch solve failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> ServeError {
        ServeError::Io(e)
    }
}

impl From<pcf_core::RobustError> for ServeError {
    fn from(e: pcf_core::RobustError) -> ServeError {
        ServeError::Solve(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcf_core::RobustOptions;
    use pcf_topology::zoo;
    use std::io::BufRead;
    use std::thread;

    fn abilene_spec() -> PlanSpec {
        PlanSpec {
            topo: zoo::build("Abilene"),
            scheme: SchemeKind::Ffc,
            tunnels: 3,
            f: 1,
            seed: 1,
            mlu: 0.0,
            max_pairs: 40,
            tol: 1e-6,
            opts: RobustOptions::default(),
            srlgs: Vec::new(),
        }
    }

    fn boot() -> Server {
        Server::bind(abilene_spec(), ServeOptions::default(), "127.0.0.1:0").unwrap()
    }

    #[test]
    fn scripted_session_round_trips() {
        let server = boot();
        let addr = server.local_addr().unwrap().to_string();
        thread::scope(|s| {
            s.spawn(|| server.run());
            let script = r#"
                # basic liveness and plan introspection
                {"cmd":"ping"}
                {"cmd":"plan"}
                {"cmd":"realize"}
                # fail a link, observe, recover
                {"cmd":"down","link":0}
                {"cmd":"realize"}
                {"cmd":"util","limit":3}
                {"cmd":"up","link":0}
                {"cmd":"wobble","link":1,"permille":500}
                {"cmd":"reset"}
                {"cmd":"realize"}
                {"cmd":"stats"}
                # malformed lines must fail without desyncing the stream
                ! {"cmd":"warp"}
                ! {"cmd":"down","link":999999}
                ! not json at all
                {"cmd":"ping"}
                {"cmd":"shutdown"}
            "#;
            let report = run_script(&addr, script).unwrap();
            assert!(report.clean(), "violations: {:?}", report.transcript);
            assert_eq!(report.commands, 16);
        });
    }

    #[test]
    fn realization_matches_offline_engine() {
        let server = boot();
        let addr = server.local_addr().unwrap().to_string();
        thread::scope(|s| {
            s.spawn(|| server.run());
            let mut client = ServeClient::connect(&addr).unwrap();
            let resps = client
                .request_batch(&[
                    r#"{"cmd":"down","link":2}"#,
                    r#"{"cmd":"realize"}"#,
                    r#"{"cmd":"shutdown"}"#,
                ])
                .unwrap();
            let served_util = resps[1]
                .get("max_utilization")
                .and_then(Json::as_f64)
                .unwrap();
            assert_eq!(resps[1].get("stage").and_then(Json::as_str), Some("normal"));

            // The same failure through an offline engine, bit-for-bit.
            let epoch = abilene_spec().solve_epoch(1, 1.0, 1, 0).unwrap();
            let mut engine = pcf_replay::ReplayEngine::new(
                &epoch.inst,
                &epoch.a,
                &epoch.b,
                &epoch.served,
                epoch.tol,
                0,
            );
            engine
                .apply(&pcf_replay::LinkEvent {
                    link: pcf_topology::LinkId(2),
                    kind: pcf_replay::EventKind::Down,
                })
                .unwrap();
            let routing = engine.realize().unwrap();
            let offline = pcf_core::peak_utilization(&epoch.inst, &routing, engine.capacities());
            assert_eq!(served_util.to_bits(), offline.to_bits());
        });
    }

    #[test]
    fn update_publishes_a_new_generation() {
        let server = boot();
        let addr = server.local_addr().unwrap().to_string();
        thread::scope(|s| {
            s.spawn(|| server.run());
            let mut client = ServeClient::connect(&addr).unwrap();
            let first = client.request(r#"{"cmd":"plan"}"#).unwrap();
            assert_eq!(first.get("gen").and_then(Json::as_u64), Some(1));
            client.request(r#"{"cmd":"update","scale":0.5}"#).unwrap();
            let waited = client
                .request(r#"{"cmd":"wait","gen":2,"timeout_ms":60000}"#)
                .unwrap();
            assert_eq!(waited.get("ok").and_then(Json::as_bool), Some(true));
            let second = client.request(r#"{"cmd":"plan"}"#).unwrap();
            assert_eq!(second.get("gen").and_then(Json::as_u64), Some(2));
            // Rescaled demand means a different plan digest.
            assert_ne!(
                first.get("plan_digest").and_then(Json::as_str),
                second.get("plan_digest").and_then(Json::as_str)
            );
            // Events and queries still flow on the new epoch.
            let post = client
                .request_batch(&[
                    r#"{"cmd":"down","link":0}"#,
                    r#"{"cmd":"realize"}"#,
                    r#"{"cmd":"shutdown"}"#,
                ])
                .unwrap();
            assert_eq!(post[1].get("ok").and_then(Json::as_bool), Some(true));
            assert_eq!(post[1].get("gen").and_then(Json::as_u64), Some(2));
        });
    }

    #[test]
    fn admission_answers_by_node_name() {
        let server = boot();
        let addr = server.local_addr().unwrap().to_string();
        thread::scope(|s| {
            s.spawn(|| server.run());
            let mut client = ServeClient::connect(&addr).unwrap();
            let plan = client.request(r#"{"cmd":"plan"}"#).unwrap();
            assert!(plan.get("pairs").and_then(Json::as_u64).unwrap() > 0);

            // Find a served pair via the offline epoch, then query by name.
            let epoch = abilene_spec().solve_epoch(1, 1.0, 1, 0).unwrap();
            let p = pcf_core::PairId(0);
            let (s_node, t_node) = epoch.inst.pair(p);
            let topo = epoch.inst.topo();
            let src = topo.node_name(s_node);
            let dst = topo.node_name(t_node);

            let tiny = client
                .request(&format!(
                    r#"{{"cmd":"admit","src":"{src}","dst":"{dst}","demand":0}}"#
                ))
                .unwrap();
            assert_eq!(tiny.get("admitted").and_then(Json::as_bool), Some(true));
            let huge = client
                .request(&format!(
                    r#"{{"cmd":"admit","src":"{src}","dst":"{dst}","demand":1e12}}"#
                ))
                .unwrap();
            assert_eq!(huge.get("admitted").and_then(Json::as_bool), Some(false));
            let unknown = client
                .request(r#"{"cmd":"admit","src":"Nowhere","dst":"Noplace","demand":1}"#)
                .unwrap();
            assert_eq!(unknown.get("ok").and_then(Json::as_bool), Some(false));
            client.request(r#"{"cmd":"shutdown"}"#).unwrap();
        });
    }

    #[test]
    fn correlated_and_degrade_verbs_flow_through_the_log() {
        let spec = PlanSpec {
            srlgs: vec![
                vec![pcf_topology::LinkId(0), pcf_topology::LinkId(1)],
                vec![pcf_topology::LinkId(2)],
            ],
            ..abilene_spec()
        };
        let server = Server::bind(spec, ServeOptions::default(), "127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap().to_string();
        thread::scope(|s| {
            s.spawn(|| server.run());
            let mut client = ServeClient::connect(&addr).unwrap();
            // SRLG burst: both members die as one command.
            let burst = client.request(r#"{"cmd":"srlg","group":0}"#).unwrap();
            assert_eq!(burst.get("ok").and_then(Json::as_bool), Some(true));
            assert_eq!(burst.get("downed").and_then(Json::as_u64), Some(2));
            assert_eq!(burst.get("dead_links").and_then(Json::as_u64), Some(2));
            // Overlap composes: group 1 adds one more dead link.
            let more = client.request(r#"{"cmd":"srlg","group":1}"#).unwrap();
            assert_eq!(more.get("dead_links").and_then(Json::as_u64), Some(3));
            // Out-of-range group is a structured error.
            let bad = client.request(r#"{"cmd":"srlg","group":9}"#).unwrap();
            assert_eq!(bad.get("ok").and_then(Json::as_bool), Some(false));
            assert!(bad
                .get("error")
                .and_then(Json::as_str)
                .unwrap()
                .contains("unknown srlg group"));
            // Reset, then a node failure: every incident link goes down.
            client.request(r#"{"cmd":"reset"}"#).unwrap();
            let node = client.request(r#"{"cmd":"node","node":0}"#).unwrap();
            let downed = node.get("downed").and_then(Json::as_u64).unwrap();
            assert!(downed >= 1);
            assert_eq!(node.get("dead_links").and_then(Json::as_u64), Some(downed));
            let bad_node = client.request(r#"{"cmd":"node","node":999}"#).unwrap();
            assert_eq!(bad_node.get("ok").and_then(Json::as_bool), Some(false));
            // Reset again; degrade must still realize (reservations
            // rescale under the shrunken capacity), and reset clears it.
            client.request(r#"{"cmd":"reset"}"#).unwrap();
            let resps = client
                .request_batch(&[
                    r#"{"cmd":"degrade","link":0,"permille":500}"#,
                    r#"{"cmd":"realize"}"#,
                    r#"{"cmd":"reset"}"#,
                    r#"{"cmd":"realize"}"#,
                    r#"{"cmd":"shutdown"}"#,
                ])
                .unwrap();
            assert_eq!(resps[1].get("ok").and_then(Json::as_bool), Some(true));
            assert_eq!(resps[3].get("ok").and_then(Json::as_bool), Some(true));
            assert_eq!(resps[3].get("stage").and_then(Json::as_str), Some("normal"));
            assert_eq!(resps[3].get("dead_links").and_then(Json::as_u64), Some(0));
        });
    }

    #[test]
    fn rebase_republishes_against_new_capacities() {
        let server = boot();
        let addr = server.local_addr().unwrap().to_string();
        thread::scope(|s| {
            s.spawn(|| server.run());
            let mut client = ServeClient::connect(&addr).unwrap();
            let first = client.request(r#"{"cmd":"plan"}"#).unwrap();
            // Halve link 0's nominal capacity, permanently.
            let ack = client
                .request(r#"{"cmd":"rebase","link":0,"permille":500}"#)
                .unwrap();
            assert_eq!(ack.get("ok").and_then(Json::as_bool), Some(true));
            let waited = client
                .request(r#"{"cmd":"wait","gen":2,"timeout_ms":60000}"#)
                .unwrap();
            assert_eq!(waited.get("ok").and_then(Json::as_bool), Some(true));
            let second = client.request(r#"{"cmd":"plan"}"#).unwrap();
            assert_eq!(second.get("gen").and_then(Json::as_u64), Some(2));
            // A capacity change re-solves into a different plan.
            assert_ne!(
                first.get("plan_digest").and_then(Json::as_str),
                second.get("plan_digest").and_then(Json::as_str)
            );
            let bad = client
                .request(r#"{"cmd":"rebase","link":999999,"permille":500}"#)
                .unwrap();
            assert_eq!(bad.get("ok").and_then(Json::as_bool), Some(false));
            client.request(r#"{"cmd":"shutdown"}"#).unwrap();
        });
    }

    #[test]
    fn connection_cap_rejects_with_busy_line() {
        let opts = ServeOptions {
            max_conns: 1,
            ..ServeOptions::default()
        };
        let server = Server::bind(abilene_spec(), opts, "127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap().to_string();
        thread::scope(|s| {
            s.spawn(|| server.run());
            let mut first = ServeClient::connect(&addr).unwrap();
            // A completed request proves the slot is held.
            first.request(r#"{"cmd":"ping"}"#).unwrap();
            // The second connection gets one busy line, then EOF.
            let over = std::net::TcpStream::connect(&addr).unwrap();
            let mut line = String::new();
            std::io::BufReader::new(over).read_line(&mut line).unwrap();
            let busy = Json::parse(line.trim()).unwrap();
            assert_eq!(busy.get("ok").and_then(Json::as_bool), Some(false));
            assert_eq!(busy.get("busy").and_then(Json::as_bool), Some(true));
            first.request(r#"{"cmd":"shutdown"}"#).unwrap();
        });
    }

    #[test]
    fn idle_connections_are_reaped() {
        let opts = ServeOptions {
            idle_timeout_ms: 60,
            read_timeout_ms: 10,
            ..ServeOptions::default()
        };
        let server = Server::bind(abilene_spec(), opts, "127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap().to_string();
        thread::scope(|s| {
            s.spawn(|| server.run());
            // Connect and send nothing: the server must reap us with a
            // final explanatory line.
            let idle = std::net::TcpStream::connect(&addr).unwrap();
            let mut reader = std::io::BufReader::new(idle);
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let reaped = Json::parse(line.trim()).unwrap();
            assert_eq!(reaped.get("ok").and_then(Json::as_bool), Some(false));
            assert!(reaped
                .get("error")
                .and_then(Json::as_str)
                .unwrap()
                .contains("idle timeout"));
            // And the socket is closed afterwards.
            line.clear();
            assert_eq!(reader.read_line(&mut line).unwrap(), 0);
            // A live client still gets served.
            let mut client = ServeClient::connect(&addr).unwrap();
            client.request(r#"{"cmd":"ping"}"#).unwrap();
            client.request(r#"{"cmd":"shutdown"}"#).unwrap();
        });
    }

    #[test]
    fn stats_deterministic_form_reflects_the_session() {
        let server = boot();
        let addr = server.local_addr().unwrap().to_string();
        thread::scope(|s| {
            s.spawn(|| server.run());
            let mut client = ServeClient::connect(&addr).unwrap();
            let resps = client
                .request_batch(&[
                    r#"{"cmd":"down","link":0}"#,
                    r#"{"cmd":"realize"}"#,
                    r#"{"cmd":"realize"}"#,
                    r#"{"cmd":"stats"}"#,
                    r#"{"cmd":"shutdown"}"#,
                ])
                .unwrap();
            let det = resps[3].get("deterministic").unwrap();
            assert_eq!(det.get("events").and_then(Json::as_u64), Some(1));
            assert_eq!(det.get("queries").and_then(Json::as_u64), Some(2));
            assert_eq!(det.get("swaps").and_then(Json::as_u64), Some(0));
            // Latency and cache counters live only in the full report.
            assert!(det.get("latency_ns").is_none());
            assert!(det.get("cache").is_none());
            let full = resps[3].get("report").unwrap();
            assert!(full.get("latency_ns").is_some());
            assert!(full.get("cache").is_some());
        });
    }
}
