//! Failure modeling: targeted failure sets, conditions, and enumeration.
//!
//! The paper designs for all scenarios of up to `f` simultaneous link
//! failures (§3.2, Eq. 4), and generalizes to shared-risk link groups and
//! node failures by imposing the budget on *group* indicators instead of
//! individual links (§3.5).

use pcf_topology::{LinkId, Topology};

/// The set of failure scenarios a design must survive.
#[derive(Debug, Clone, PartialEq)]
pub enum FailureModel {
    /// Up to `f` simultaneous link failures (Eq. 4's `sum x_e <= f`).
    Links {
        /// Maximum simultaneous link failures.
        f: usize,
    },
    /// Up to `f` simultaneous group failures; a group's failure kills all
    /// its links. Models SRLGs (arbitrary groups) and node failures (one
    /// group per node containing its incident links), §3.5.
    Groups {
        /// The link groups that fail atomically.
        groups: Vec<Vec<LinkId>>,
        /// Maximum simultaneous group failures.
        f: usize,
    },
    /// An explicit, enumerated scenario list (each scenario = the set of
    /// links that die together). This is how probabilistically pruned
    /// designs in the style of Teavar/Lancet (discussed in §6) plug in: the
    /// caller enumerates the scenarios whose probability mass matters and
    /// designs for exactly those. The adversary is then *exact* — no
    /// relaxation of `x` — which also makes this the reference point for
    /// measuring the conservatism of the paper's `x ∈ [0,1]` relaxation.
    Explicit {
        /// The scenarios to protect against (the empty scenario is implied).
        scenarios: Vec<Vec<LinkId>>,
    },
}

impl FailureModel {
    /// Convenience constructor for plain link failures.
    pub fn links(f: usize) -> Self {
        FailureModel::Links { f }
    }

    /// One failure group per node: all links incident to the node die
    /// together (§3.5 node failures).
    pub fn node_failures(topo: &Topology, f: usize) -> Self {
        let groups = topo
            .nodes()
            .map(|n| topo.incident(n).iter().map(|&(_, l)| l).collect())
            .collect();
        FailureModel::Groups { groups, f }
    }

    /// The failure budget `f` (for explicit lists: the largest scenario's
    /// cardinality, which is what FFC's `f · p_st` bound consumes).
    pub fn budget(&self) -> usize {
        match self {
            FailureModel::Links { f } => *f,
            FailureModel::Groups { f, .. } => *f,
            FailureModel::Explicit { scenarios } => {
                scenarios.iter().map(|s| s.len()).max().unwrap_or(0)
            }
        }
    }

    /// The failure groups that budgeted models expand over; `None` for
    /// explicit scenario lists, which carry their scenarios directly.
    fn expansion_groups(&self, topo: &Topology) -> Option<Vec<Vec<LinkId>>> {
        match self {
            FailureModel::Links { .. } => Some(topo.links().map(|l| vec![l]).collect()),
            FailureModel::Groups { groups, .. } => Some(groups.clone()),
            FailureModel::Explicit { .. } => None,
        }
    }

    /// Builds the explicit scenario list containing every independent-link
    /// failure combination whose probability is at least `min_prob`, given
    /// a per-link failure probability. Scenarios are explored in decreasing
    /// probability; at most `cap` scenarios are returned (a Lancet-style
    /// pruned design set).
    pub fn pruned_by_probability(
        topo: &Topology,
        link_prob: &[f64],
        min_prob: f64,
        cap: usize,
    ) -> Self {
        assert_eq!(link_prob.len(), topo.link_count());
        assert!(link_prob.iter().all(|&p| (0.0..1.0).contains(&p)));
        // Probability of "exactly this set fails" relative to the all-alive
        // scenario: prod p_e / (1 - p_e); rank sets by that ratio.
        let mut ratio: Vec<(usize, f64)> = link_prob
            .iter()
            .enumerate()
            .map(|(i, &p)| (i, p / (1.0 - p)))
            .filter(|&(_, r)| r > 0.0)
            .collect();
        ratio.sort_by(|a, b| b.1.total_cmp(&a.1));
        let base: f64 = link_prob.iter().map(|&p| 1.0 - p).product();

        /// Total order on finite non-negative f64 for the best-first heap.
        #[derive(PartialEq)]
        struct Prob(f64);
        impl Eq for Prob {}
        impl PartialOrd for Prob {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Prob {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                self.0.total_cmp(&other.0)
            }
        }

        // Best-first search over subsets (by scenario probability).
        let mut heap: std::collections::BinaryHeap<(Prob, Vec<usize>)> =
            std::collections::BinaryHeap::new();
        let mut out: Vec<Vec<LinkId>> = Vec::new();
        for (idx, &(_, r)) in ratio.iter().enumerate() {
            heap.push((Prob(base * r), vec![idx]));
        }
        while let Some((Prob(p), set)) = heap.pop() {
            if p < min_prob || out.len() >= cap {
                break;
            }
            out.push(set.iter().map(|&i| LinkId(ratio[i].0 as u32)).collect());
            // Extend with strictly larger-indexed links to avoid duplicates.
            let Some(&last) = set.last() else {
                continue;
            };
            for (next, &(_, r)) in ratio.iter().enumerate().skip(last + 1) {
                let mut bigger = set.clone();
                bigger.push(next);
                heap.push((Prob(p * r), bigger));
            }
        }
        FailureModel::Explicit { scenarios: out }
    }

    /// Enumerates every concrete worst-cardinality scenario as a dead-link
    /// mask (all subsets of exactly `f` links/groups; failures only remove
    /// capacity, so sub-budget scenarios are dominated for validation and
    /// optimal baselines).
    ///
    /// The number of scenarios is `C(n, f)` — call only when that is small
    /// enough, or use [`FailureModel::sample_scenarios`].
    pub fn enumerate_scenarios(&self, topo: &Topology) -> Vec<Vec<bool>> {
        if let FailureModel::Explicit { scenarios } = self {
            return scenarios
                .iter()
                .map(|dead| {
                    let mut mask = vec![false; topo.link_count()];
                    for l in dead {
                        mask[l.index()] = true;
                    }
                    mask
                })
                .collect();
        }
        let Some(groups) = self.expansion_groups(topo) else {
            return Vec::new(); // Explicit lists were handled above
        };
        let f = self.budget().min(groups.len());
        let mut out = Vec::new();
        let mut idx: Vec<usize> = (0..f).collect();
        if f == 0 {
            out.push(vec![false; topo.link_count()]);
            return out;
        }
        loop {
            let mut mask = vec![false; topo.link_count()];
            for &g in &idx {
                for l in &groups[g] {
                    mask[l.index()] = true;
                }
            }
            out.push(mask);
            // next combination
            let n = groups.len();
            let mut i = f;
            loop {
                if i == 0 {
                    return out;
                }
                i -= 1;
                if idx[i] + (f - i) < n {
                    idx[i] += 1;
                    for j in (i + 1)..f {
                        idx[j] = idx[j - 1] + 1;
                    }
                    break;
                }
            }
        }
    }

    /// Number of worst-cardinality scenarios without materialising them.
    pub fn scenario_count(&self, topo: &Topology) -> usize {
        let n = match self {
            FailureModel::Links { .. } => topo.link_count(),
            FailureModel::Groups { groups, .. } => groups.len(),
            FailureModel::Explicit { scenarios } => return scenarios.len(),
        };
        let f = self.budget().min(n);
        // C(n, f), saturating.
        let mut c: usize = 1;
        for i in 0..f {
            c = c.saturating_mul(n - i) / (i + 1);
        }
        c
    }

    /// A deterministic sample of `count` distinct scenarios (dead-link
    /// masks), used when full enumeration is intractable. Sampling scenarios
    /// yields an *optimistic* (upper) bound when used for worst-case minima;
    /// callers must report that.
    pub fn sample_scenarios(&self, topo: &Topology, count: usize, seed: u64) -> Vec<Vec<bool>> {
        let total = self.scenario_count(topo);
        if total <= count {
            return self.enumerate_scenarios(topo);
        }
        if let FailureModel::Explicit { .. } = self {
            let mut all = self.enumerate_scenarios(topo);
            all.truncate(count);
            return all;
        }
        let Some(groups) = self.expansion_groups(topo) else {
            return Vec::new(); // Explicit lists were handled above
        };
        let f = self.budget().min(groups.len());
        let n = groups.len();
        // Simple deterministic LCG to avoid threading RNG deps here.
        let mut state = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        let mut guard = 0usize;
        while out.len() < count && guard < 100 * count {
            guard += 1;
            let mut pick: Vec<usize> = Vec::with_capacity(f);
            while pick.len() < f {
                let g = next() % n;
                if !pick.contains(&g) {
                    pick.push(g);
                }
            }
            pick.sort_unstable();
            if !seen.insert(pick.clone()) {
                continue;
            }
            let mut mask = vec![false; topo.link_count()];
            for &g in &pick {
                for l in &groups[g] {
                    mask[l.index()] = true;
                }
            }
            out.push(mask);
        }
        out
    }
}

/// Activation condition of a logical sequence or logical flow (§3.4 and the
/// appendix's generalised conditions).
#[derive(Debug, Clone, PartialEq)]
pub enum Condition {
    /// Always active.
    Always,
    /// Active exactly when the given link is dead (`h_q = x_e`).
    LinkDead(LinkId),
    /// Active when all links in `alive` are up and all links in `dead` are
    /// down (appendix linearization).
    AliveDead {
        /// Links that must be alive.
        alive: Vec<LinkId>,
        /// Links that must be dead.
        dead: Vec<LinkId>,
    },
}

impl Condition {
    /// Evaluates the condition under a concrete dead-link mask.
    pub fn holds(&self, dead_mask: &[bool]) -> bool {
        match self {
            Condition::Always => true,
            Condition::LinkDead(e) => dead_mask[e.index()],
            Condition::AliveDead { alive, dead } => {
                alive.iter().all(|e| !dead_mask[e.index()])
                    && dead.iter().all(|e| dead_mask[e.index()])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcf_topology::zoo;

    #[test]
    fn enumerate_single_failures_is_one_per_link() {
        let t = zoo::build("Sprint");
        let fm = FailureModel::links(1);
        let sc = fm.enumerate_scenarios(&t);
        assert_eq!(sc.len(), t.link_count());
        for mask in &sc {
            assert_eq!(mask.iter().filter(|&&d| d).count(), 1);
        }
    }

    #[test]
    fn enumerate_double_failures_counts_pairs() {
        let t = zoo::build("Sprint"); // 17 links
        let fm = FailureModel::links(2);
        let sc = fm.enumerate_scenarios(&t);
        assert_eq!(sc.len(), 17 * 16 / 2);
        assert_eq!(fm.scenario_count(&t), 17 * 16 / 2);
    }

    #[test]
    fn zero_budget_is_the_no_failure_scenario() {
        let t = zoo::build("Sprint");
        let fm = FailureModel::links(0);
        let sc = fm.enumerate_scenarios(&t);
        assert_eq!(sc.len(), 1);
        assert!(sc[0].iter().all(|&d| !d));
    }

    #[test]
    fn node_failure_groups_kill_incident_links() {
        let t = zoo::build("Sprint");
        let fm = FailureModel::node_failures(&t, 1);
        let sc = fm.enumerate_scenarios(&t);
        assert_eq!(sc.len(), t.node_count());
        // Scenario k kills exactly node k's incident links.
        for (k, mask) in sc.iter().enumerate() {
            let n = pcf_topology::NodeId(k as u32);
            for l in t.links() {
                let should = t.link(l).touches(n);
                assert_eq!(mask[l.index()], should);
            }
        }
    }

    #[test]
    fn sampling_returns_enumeration_when_small() {
        let t = zoo::build("Sprint");
        let fm = FailureModel::links(1);
        let sc = fm.sample_scenarios(&t, 1000, 42);
        assert_eq!(sc.len(), t.link_count());
    }

    #[test]
    fn sampling_is_deterministic_and_distinct() {
        let t = zoo::build("GEANT"); // 50 links, C(50,3) huge
        let fm = FailureModel::links(3);
        let a = fm.sample_scenarios(&t, 40, 7);
        let b = fm.sample_scenarios(&t, 40, 7);
        assert_eq!(a.len(), 40);
        assert_eq!(a, b);
        let set: std::collections::HashSet<_> = a.iter().collect();
        assert_eq!(set.len(), 40);
        for mask in &a {
            assert_eq!(mask.iter().filter(|&&d| d).count(), 3);
        }
    }

    #[test]
    fn conditions_evaluate() {
        let t = zoo::build("Sprint");
        let mut mask = vec![false; t.link_count()];
        mask[3] = true;
        assert!(Condition::Always.holds(&mask));
        assert!(Condition::LinkDead(LinkId(3)).holds(&mask));
        assert!(!Condition::LinkDead(LinkId(4)).holds(&mask));
        let c = Condition::AliveDead {
            alive: vec![LinkId(0)],
            dead: vec![LinkId(3)],
        };
        assert!(c.holds(&mask));
        mask[0] = true;
        assert!(!c.holds(&mask));
    }
}

#[cfg(test)]
mod explicit_tests {
    use super::*;
    use pcf_topology::zoo;

    #[test]
    fn explicit_enumeration_round_trips() {
        let t = zoo::build("Sprint");
        let fm = FailureModel::Explicit {
            scenarios: vec![vec![LinkId(0)], vec![LinkId(1), LinkId(2)]],
        };
        assert_eq!(fm.budget(), 2);
        assert_eq!(fm.scenario_count(&t), 2);
        let masks = fm.enumerate_scenarios(&t);
        assert_eq!(masks.len(), 2);
        assert!(masks[0][0] && !masks[0][1]);
        assert!(masks[1][1] && masks[1][2]);
    }

    #[test]
    fn pruning_orders_by_probability() {
        let t = zoo::build("Sprint");
        // Link 3 fails often; link 5 moderately; the rest rarely.
        let mut probs = vec![0.001; t.link_count()];
        probs[3] = 0.2;
        probs[5] = 0.05;
        let fm = FailureModel::pruned_by_probability(&t, &probs, 1e-4, 10);
        let FailureModel::Explicit { scenarios } = &fm else {
            panic!("pruning returns an explicit list")
        };
        assert!(!scenarios.is_empty());
        // Most probable scenario first: {link 3} alone.
        assert_eq!(scenarios[0], vec![LinkId(3)]);
        // The pair {3,5} should rank above any {rare} singleton.
        let pos_pair = scenarios.iter().position(|s| s.len() == 2).unwrap();
        assert_eq!(scenarios[pos_pair], vec![LinkId(3), LinkId(5)]);
        assert!(scenarios.len() <= 10);
    }

    #[test]
    fn pruning_respects_cap_and_threshold() {
        let t = zoo::build("Sprint");
        let probs = vec![0.01; t.link_count()];
        let fm = FailureModel::pruned_by_probability(&t, &probs, 0.0, 5);
        assert_eq!(fm.scenario_count(&t), 5);
        let fm2 = FailureModel::pruned_by_probability(&t, &probs, 0.999, 100);
        // No scenario has probability 0.999.
        assert_eq!(fm2.scenario_count(&t), 0);
    }
}
