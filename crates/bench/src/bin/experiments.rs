//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p pcf-bench --bin experiments -- all --scale quick
//! cargo run --release -p pcf-bench --bin experiments -- fig11 fig12 --scale medium
//! ```
//!
//! Targets: `fig2 table1 fig8 fig9 fig10 fig11 fig12 fig13 fig14 topsort
//! relaxation srlg bypass dual r3 all`.
//! Scales: `quick` (default), `medium`, `paper`.

use pcf_bench::Scale;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::quick();
    let mut targets: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = args
                    .get(i)
                    .and_then(|s| Scale::parse(s))
                    .unwrap_or_else(|| {
                        eprintln!("unknown scale; use quick|medium|paper");
                        std::process::exit(2);
                    });
            }
            t => targets.push(t.to_string()),
        }
        i += 1;
    }
    if targets.is_empty() {
        targets.push("all".into());
    }
    let all = targets.iter().any(|t| t == "all");
    let want = |name: &str| all || targets.iter().any(|t| t == name);

    println!(
        "# PCF experiments (topologies: {}, big: {}, TMs: {})\n",
        scale.topologies.len(),
        scale.big_topology,
        scale.tm_count
    );
    let t0 = Instant::now();
    if want("fig2") {
        pcf_bench::run_fig2();
        println!();
    }
    if want("table1") {
        pcf_bench::run_table1();
        println!();
    }
    if want("fig8") {
        pcf_bench::run_fig8(&scale);
        println!();
    }
    if want("fig9") {
        pcf_bench::run_fig9(&scale);
        println!();
    }
    if want("fig10") {
        pcf_bench::run_fig10(&scale);
        println!();
    }
    if want("fig11") {
        pcf_bench::run_fig11(&scale);
        println!();
    }
    if want("fig12") {
        pcf_bench::run_fig12(&scale);
        println!();
    }
    if want("fig13") {
        pcf_bench::run_fig13(&scale);
        println!();
    }
    if want("fig14") {
        pcf_bench::run_fig14(&scale);
        println!();
    }
    if want("topsort") {
        pcf_bench::run_topsort(&scale);
        println!();
    }
    if want("relaxation") {
        pcf_bench::run_relaxation_gap(&scale);
        println!();
    }
    if want("srlg") {
        pcf_bench::run_srlg(&scale);
        println!();
    }
    if want("bypass") {
        pcf_bench::run_bypass_ablation(&scale);
        println!();
    }
    if want("dual") {
        pcf_bench::run_dual_vs_cuts(&scale);
        println!();
    }
    if want("r3") {
        pcf_bench::run_r3_comparison(&scale);
        println!();
    }
    println!("total wall time: {:.1}s", t0.elapsed().as_secs_f64());
}
