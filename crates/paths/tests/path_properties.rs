//! Property tests for the path algorithms on random ring-and-chord graphs.

use pcf_paths::{select_tunnels, shortest_path, yen_k_shortest};
use pcf_rng::{forall, no_shrink, Config, Pcg32};
use pcf_topology::{NodeId, Topology};

/// A random 2-edge-connected topology: ring plus chords.
#[derive(Debug, Clone)]
struct Graph {
    n: usize,
    chords: Vec<(usize, usize)>,
}

impl Graph {
    fn build(&self) -> Topology {
        let mut t = Topology::new("random");
        let nodes: Vec<NodeId> = (0..self.n).map(|i| t.add_node(format!("n{i}"))).collect();
        for i in 0..self.n {
            t.add_link(nodes[i], nodes[(i + 1) % self.n], 1.0);
        }
        for &(a, b) in &self.chords {
            if a != b {
                t.add_link(nodes[a], nodes[b], 1.0);
            }
        }
        t
    }
}

fn gen_graph(rng: &mut Pcg32) -> Graph {
    let n = rng.range_usize_inclusive(4, 9);
    let chords = (0..rng.range_usize_inclusive(0, 3))
        .map(|_| (rng.range_usize(0, n), rng.range_usize(0, n)))
        .collect();
    Graph { n, chords }
}

#[test]
fn yen_paths_are_simple_sorted_and_start_with_shortest() {
    forall(
        "yen_paths_are_simple_sorted_and_start_with_shortest",
        &Config::with_cases(64),
        gen_graph,
        no_shrink,
        |g| {
            let topo = g.build();
            let (s, t) = (NodeId(0), NodeId((g.n / 2) as u32));
            let paths = yen_k_shortest(&topo, s, t, 4);
            let sp = shortest_path(&topo, s, t).expect("ring is connected");
            if paths.is_empty() {
                return Err("no paths on a connected graph".into());
            }
            if paths[0].len() != sp.len() {
                return Err(format!(
                    "first Yen path has {} hops, Dijkstra found {}",
                    paths[0].len(),
                    sp.len()
                ));
            }
            for w in paths.windows(2) {
                if w[0].len() > w[1].len() {
                    return Err(format!(
                        "paths out of order: {} hops before {}",
                        w[0].len(),
                        w[1].len()
                    ));
                }
            }
            for p in &paths {
                if !p.is_simple() {
                    return Err(format!("non-simple path: {p:?}"));
                }
                if p.source() != s || p.dest() != t {
                    return Err(format!("endpoints wrong: {p:?}"));
                }
            }
            Ok(())
        },
    );
}

#[test]
fn selected_tunnels_connect_the_pair() {
    forall(
        "selected_tunnels_connect_the_pair",
        &Config::with_cases(64),
        gen_graph,
        no_shrink,
        |g| {
            let topo = g.build();
            let (s, t) = (NodeId(0), NodeId((g.n - 1) as u32));
            let tunnels = select_tunnels(&topo, s, t, 3);
            if tunnels.is_empty() {
                return Err("no tunnels on a connected graph".into());
            }
            for p in &tunnels {
                if p.source() != s || p.dest() != t {
                    return Err(format!("tunnel endpoints wrong: {p:?}"));
                }
            }
            Ok(())
        },
    );
}
