//! Benches for the substrate: LP solver, linear systems, paths, the online
//! failure-response step (the paper's "solving a linear system is much
//! faster than solving LPs" claim, §4.1), and the incremental warm-started
//! robust engine against a cold rebuild-every-round baseline.

use pcf_bench::harness::Harness;
use pcf_core::realize::{proportional_routing, realize_routing, FailureState};
use pcf_core::{
    pcf_ls_instance, solve_pcf_ls, solve_pcf_tf, tunnel_instance, FailureModel, RobustOptions,
};
use pcf_lp::{
    solve_dense, solve_gauss_seidel, DenseMatrix, EngineKind, IncrementalLp, LpProblem, Pricing,
    Sense, SimplexOptions, VarId,
};
use pcf_topology::zoo;
use pcf_traffic::gravity;
use std::hint::black_box;

fn bench_simplex(c: &mut Harness) {
    let mut g = c.benchmark_group("lp");
    g.sample_size(20);
    // A structured LP: transportation problem 12x12.
    g.bench_function("simplex_transportation_12x12", |b| {
        b.iter(|| {
            let n = 12;
            let mut lp = LpProblem::new(Sense::Minimize);
            let mut v = Vec::new();
            for i in 0..n {
                for j in 0..n {
                    v.push(lp.add_nonneg(((i * 7 + j * 3) % 10 + 1) as f64));
                }
            }
            for i in 0..n {
                lp.add_eq((0..n).map(|j| (v[i * n + j], 1.0)), 1.0);
            }
            for j in 0..n {
                lp.add_eq((0..n).map(|i| (v[i * n + j], 1.0)), 1.0);
            }
            black_box(lp.solve().unwrap().objective)
        })
    });
    g.finish();
}

/// Transportation problem `n x n` with the given solver options; returns the
/// problem plus its variable grid so callers can append cut rows.
fn transportation_lp(n: usize, opts: &SimplexOptions) -> (LpProblem, Vec<VarId>) {
    let mut lp = LpProblem::new(Sense::Minimize);
    lp.set_options(opts.clone());
    let mut v = Vec::new();
    for i in 0..n {
        for j in 0..n {
            v.push(lp.add_nonneg(((i * 7 + j * 3) % 10 + 1) as f64));
        }
    }
    for i in 0..n {
        lp.add_eq((0..n).map(|j| (v[i * n + j], 1.0)), 1.0);
    }
    for j in 0..n {
        lp.add_eq((0..n).map(|i| (v[i * n + j], 1.0)), 1.0);
    }
    (lp, v)
}

/// The cut appended at step `k` of the cut-sequence benches: cap the even
/// columns of supply row `k`, tightening the transportation optimum a bit.
fn cut_row(v: &[VarId], n: usize, k: usize) -> Vec<(VarId, f64)> {
    (0..n).step_by(2).map(|j| (v[k * n + j], 1.0)).collect()
}

fn bench_lp_sparse(c: &mut Harness) {
    // The sparse basis engine (CSC + sparse LU + devex + presolve) against
    // the retained dense product-form engine on the same model, plus the
    // warm-start payoff: appending cuts to a live IncrementalLp versus
    // rebuilding and re-solving from scratch after every cut.
    let n = 24;
    let sparse = SimplexOptions::default();
    let dense = SimplexOptions {
        engine: EngineKind::Dense,
        pricing: Pricing::Dantzig,
        presolve: false,
        ..SimplexOptions::default()
    };
    // The engines must agree before we time them.
    let o_sparse = transportation_lp(n, &sparse).0.solve().unwrap().objective;
    let o_dense = transportation_lp(n, &dense).0.solve().unwrap().objective;
    assert!(
        (o_sparse - o_dense).abs() <= 1e-6 * (1.0 + o_dense.abs()),
        "engine disagreement: sparse {o_sparse} vs dense {o_dense}"
    );

    let mut g = c.benchmark_group("lp_sparse");
    g.sample_size(10);
    g.bench_function("cold_sparse_transport_24", |b| {
        b.iter(|| black_box(transportation_lp(n, &sparse).0.solve().unwrap().objective))
    });
    g.bench_function("cold_dense_transport_24", |b| {
        b.iter(|| black_box(transportation_lp(n, &dense).0.solve().unwrap().objective))
    });
    g.bench_function("warm_cut_sequence_10", |b| {
        b.iter(|| {
            let (lp, v) = transportation_lp(n, &sparse);
            let mut inc = IncrementalLp::new(lp);
            let mut last = inc.solve().unwrap().objective;
            for k in 0..10 {
                inc.add_le(cut_row(&v, n, k), 0.6);
                last = inc.solve().unwrap().objective;
            }
            black_box(last)
        })
    });
    g.bench_function("cold_cut_sequence_10", |b| {
        b.iter(|| {
            let mut last = 0.0;
            for upto in 0..=10 {
                let (mut lp, v) = transportation_lp(n, &sparse);
                for k in 0..upto {
                    lp.add_le(cut_row(&v, n, k), 0.6);
                }
                last = lp.solve().unwrap().objective;
            }
            black_box(last)
        })
    });
    g.finish();
}

fn bench_linear_system_vs_lp(c: &mut Harness) {
    // The paper's §4.1 point: responding to a failure needs only a linear
    // system solve, much cheaper than re-running an optimization.
    let topo = zoo::build("Sprint");
    let tm = gravity(&topo, 5);
    let inst = pcf_ls_instance(&topo, &tm, 3);
    let fm = FailureModel::links(1);
    let sol = solve_pcf_ls(&inst, &fm, &RobustOptions::default());
    let served: Vec<f64> = inst
        .pair_ids()
        .map(|p| sol.z[p.0] * inst.demand(p))
        .collect();
    let mut dead = vec![false; topo.link_count()];
    dead[0] = true;
    let state = FailureState::new(&inst, &dead).expect("mask matches topology");

    let mut g = c.benchmark_group("online_response");
    g.bench_function("linear_system_routing", |b| {
        b.iter(|| {
            black_box(
                realize_routing(&inst, &state, &sol.a, &sol.b, &served, 1e-6)
                    .unwrap()
                    .u
                    .len(),
            )
        })
    });
    g.bench_function("proportional_routing", |b| {
        b.iter(|| {
            black_box(
                proportional_routing(&inst, &state, &sol.a, &sol.b, &served, 1e-6)
                    .unwrap()
                    .u
                    .len(),
            )
        })
    });
    g.sample_size(10);
    g.bench_function("full_offline_resolve_for_comparison", |b| {
        b.iter(|| black_box(solve_pcf_ls(&inst, &fm, &RobustOptions::default()).objective))
    });
    g.finish();
}

fn bench_mmatrix_solvers(c: &mut Harness) {
    // Diagonally dominant M-matrix, n = 100.
    let n = 100;
    let mut m = DenseMatrix::zeros(n);
    for i in 0..n {
        m.set(i, i, 4.0);
        m.set(i, (i + 1) % n, -1.0);
        m.set(i, (i + 7) % n, -0.5);
    }
    let b: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64).collect();
    let mut g = c.benchmark_group("linsys");
    g.bench_function("dense_gaussian_100", |bch| {
        bch.iter(|| black_box(solve_dense(&m, std::slice::from_ref(&b)).unwrap()[0][0]))
    });
    g.bench_function("gauss_seidel_100", |bch| {
        bch.iter(|| black_box(solve_gauss_seidel(&m, &b, 1e-10, 1000).unwrap()[0]))
    });
    g.finish();
}

fn bench_paths(c: &mut Harness) {
    let topo = zoo::build("Deltacom");
    let mut g = c.benchmark_group("paths");
    g.bench_function("yen_8_deltacom", |b| {
        b.iter(|| {
            black_box(
                pcf_paths::yen_k_shortest(
                    &topo,
                    pcf_topology::NodeId(0),
                    pcf_topology::NodeId(60),
                    8,
                )
                .len(),
            )
        })
    });
    g.bench_function("select_3_tunnels_deltacom", |b| {
        b.iter(|| {
            black_box(
                pcf_paths::select_tunnels(
                    &topo,
                    pcf_topology::NodeId(0),
                    pcf_topology::NodeId(60),
                    3,
                )
                .len(),
            )
        })
    });
    g.finish();
}

fn bench_robust_engine(c: &mut Harness) {
    // The incremental engine's two levers measured head-to-head: a live
    // master warm-started across cutting-plane rounds with 4 separation
    // threads, versus rebuilding the master from scratch every round on a
    // single thread (how the engine worked before the refactor).
    let topo = zoo::build("Sprint");
    let tm = gravity(&topo, 7);
    let inst = tunnel_instance(&topo, &tm, 4);
    let fm = FailureModel::links(2);
    let warm = RobustOptions {
        threads: 4,
        warm_start: true,
        ..RobustOptions::default()
    };
    let cold = RobustOptions {
        threads: 1,
        warm_start: false,
        ..RobustOptions::default()
    };

    let mut g = c.benchmark_group("robust_solve");
    g.sample_size(10);
    g.bench_function("warm_4threads", |b| {
        b.iter(|| black_box(solve_pcf_tf(&inst, &fm, &warm).objective))
    });
    g.bench_function("cold_rebuild_1thread", |b| {
        b.iter(|| black_box(solve_pcf_tf(&inst, &fm, &cold).objective))
    });
    g.finish();
}

fn main() {
    let mut c = Harness::from_args("solver");
    bench_simplex(&mut c);
    bench_lp_sparse(&mut c);
    bench_linear_system_vs_lp(&mut c);
    bench_mmatrix_solvers(&mut c);
    bench_paths(&mut c);
    bench_robust_engine(&mut c);
    c.finish();
}
