//! Property tests for dual-based admission control (Prop. 5 soundness).
//!
//! The serving daemon answers "can demand `d` be added between `s,t`?"
//! from the stored dual bounds without re-solving. These tests pin the
//! two directions of that answer on a real evaluation topology:
//!
//! * **admitted ⇒ safe**: bumping the pair's served demand by the
//!   admitted amount keeps `validate_all` congestion-free over *every*
//!   ≤f-link-failure scenario;
//! * **rejected ⇒ witnessed**: the returned witness scenario really does
//!   violate validation at the requested demand.

use pcf_core::{
    absolute_tolerance, admit, solve_ffc, solve_pcf_tf, validate_all, validate_scenarios,
    AdmitOutcome, FailureModel, Instance, RobustOptions, RobustSolution,
};
use pcf_topology::zoo;
use pcf_traffic::gravity;

fn solved_abilene(scheme: &str) -> (Instance, RobustSolution, FailureModel) {
    let topo = zoo::build("Abilene");
    let mut tm = gravity(&topo, 1);
    tm.truncate_to_top_k(40);
    let fm = FailureModel::links(1);
    let opts = RobustOptions::default();
    let inst = pcf_core::tunnel_instance(&topo, &tm, 3);
    let sol = match scheme {
        "ffc" => solve_ffc(&inst, &fm, &opts),
        _ => solve_pcf_tf(&inst, &fm, &opts),
    };
    (inst, sol, fm)
}

/// Sweep pairs × demand levels: every admitted extra must survive
/// exhaustive validation, every witnessed rejection must reproduce a
/// violation, and no rejection may fall back to "no witness" within a
/// generous enumeration budget.
#[test]
fn admission_verdicts_are_sound_across_pairs_and_levels() {
    for scheme in ["ffc", "pcf-tf"] {
        let (inst, sol, fm) = solved_abilene(scheme);
        let served: Vec<f64> = inst
            .pair_ids()
            .map(|p| sol.z[p.0] * inst.demand(p))
            .collect();
        let tol_abs = absolute_tolerance(&served, 1e-6);
        let mut admissions = 0usize;
        let mut rejections = 0usize;
        for p in inst.pair_ids().take(12) {
            let headroom = (sol.worst_available[p.0] - served[p.0]).max(0.0);
            for extra in [
                0.0,
                0.25 * headroom,
                0.9 * headroom,
                headroom + 0.5 + served[p.0],
            ] {
                let outcome = admit(
                    &inst,
                    p,
                    &fm,
                    &sol.a,
                    &sol.b,
                    served[p.0],
                    sol.worst_available[p.0],
                    extra,
                    tol_abs,
                    1_000_000,
                );
                match outcome {
                    AdmitOutcome::Admitted { headroom: h, .. } => {
                        admissions += 1;
                        assert!(
                            extra <= h + tol_abs + 1e-9,
                            "{scheme} pair {p:?}: admitted {extra} beyond headroom {h}"
                        );
                        let mut bumped = served.clone();
                        bumped[p.0] += extra;
                        let report = validate_all(&inst, &fm, &sol.a, &sol.b, &bumped, 1e-6);
                        assert!(
                            report.congestion_free(),
                            "{scheme} pair {p:?}: admitted extra {extra} violates: {:?}",
                            report.violations
                        );
                    }
                    AdmitOutcome::Rejected {
                        worst_available,
                        witness,
                    } => {
                        rejections += 1;
                        assert!(
                            served[p.0] + extra > worst_available,
                            "{scheme} pair {p:?}: rejected {extra} below the bound"
                        );
                        let witness = witness.unwrap_or_else(|| {
                            panic!("{scheme} pair {p:?}: rejection without witness in budget")
                        });
                        let mut mask = vec![false; inst.topo().link_count()];
                        for l in &witness {
                            mask[l.index()] = true;
                        }
                        let mut bumped = served.clone();
                        bumped[p.0] += extra;
                        let report =
                            validate_scenarios(&inst, &sol.a, &sol.b, &bumped, &[mask], 1e-6);
                        assert!(
                            !report.congestion_free(),
                            "{scheme} pair {p:?}: witness {witness:?} does not violate at {extra}"
                        );
                    }
                }
            }
        }
        // The sweep must exercise both verdicts to mean anything.
        assert!(admissions > 0, "{scheme}: no admissions exercised");
        assert!(rejections > 0, "{scheme}: no rejections exercised");
    }
}

/// Zero extra demand is always admissible: the plan already serves it.
#[test]
fn zero_extra_is_always_admitted() {
    let (inst, sol, fm) = solved_abilene("ffc");
    let served: Vec<f64> = inst
        .pair_ids()
        .map(|p| sol.z[p.0] * inst.demand(p))
        .collect();
    let tol_abs = absolute_tolerance(&served, 1e-6);
    for p in inst.pair_ids() {
        let outcome = admit(
            &inst,
            p,
            &fm,
            &sol.a,
            &sol.b,
            served[p.0],
            sol.worst_available[p.0],
            0.0,
            tol_abs,
            1_000_000,
        );
        assert!(outcome.admitted(), "pair {p:?}: {outcome:?}");
    }
}
