//! Probabilistic (pruned) design and capacity augmentation — the §6
//! extensions: design for the failure scenarios that actually matter, then
//! buy the cheapest capacity that lifts the guarantee to a target.
//!
//! ```text
//! cargo run --release --example probabilistic_design
//! ```

use pcf_core::validate::validate_all;
use pcf_core::{
    augment_capacity, solve_pcf_tf, tunnel_instance, FailureModel, Instance, RobustOptions,
};
use pcf_topology::zoo;
use pcf_traffic::gravity;

fn served(inst: &Instance, sol: &pcf_core::RobustSolution) -> Vec<f64> {
    inst.pair_ids()
        .map(|p| sol.z[p.0] * inst.demand(p))
        .collect()
}

fn main() {
    let topo = zoo::build("B4");
    let (tm, _) = pcf_core::scale_to_mlu(&topo, &gravity(&topo, 9), 0.6);
    let inst = tunnel_instance(&topo, &tm, 3);
    let opts = RobustOptions::default();

    // 1. Classic all-f designs vs a probability-pruned design.
    //    Long-haul links (here: the fattest) fail more often.
    let probs: Vec<f64> = topo
        .links()
        .map(|l| if topo.capacity(l) >= 5.0 { 0.02 } else { 0.004 })
        .collect();
    let pruned = FailureModel::pruned_by_probability(&topo, &probs, 1e-4, 64);
    let n_pruned = pruned.scenario_count(&topo);

    let all1 = solve_pcf_tf(&inst, &FailureModel::links(1), &opts);
    let all2 = solve_pcf_tf(&inst, &FailureModel::links(2), &opts);
    let prb = solve_pcf_tf(&inst, &pruned, &opts);
    println!("guaranteed demand scale (PCF-TF, B4):");
    println!("  all single link failures      {:.4}", all1.objective);
    println!("  all double link failures      {:.4}", all2.objective);
    println!(
        "  {} scenarios with P >= 1e-4    {:.4}  <- likely doubles covered, far above f=2",
        n_pruned, prb.objective
    );

    // The pruned design is exactly safe on its own scenario list.
    let report = validate_all(&inst, &pruned, &prb.a, &prb.b, &served(&inst, &prb), 1e-6);
    assert!(report.congestion_free());
    println!(
        "  pruned design audited over its {} scenarios: congestion-free",
        report.scenarios
    );

    // 2. Capacity augmentation: lift the all-single-failure guarantee by
    //    25% at minimum added capacity (§6: "simply making capacities
    //    variable").
    let target = all1.objective * 1.25;
    let aug = augment_capacity(&inst, &FailureModel::links(1), target, |_| 1.0, &opts)
        .expect("augmentation LP solves")
        .expect("augmentation converges");
    let upgraded: Vec<_> = topo
        .links()
        .filter(|l| aug.extra[l.index()] > 1e-6)
        .collect();
    println!("\nto guarantee {:.4} (+25%) under single failures:", target);
    println!(
        "  add {:.3} units of capacity across {} links:",
        aug.total_cost,
        upgraded.len()
    );
    for l in upgraded.iter().take(5) {
        let link = topo.link(*l);
        println!(
            "    {} ({} - {}): +{:.3} on {:.1}",
            l,
            topo.node_name(link.u),
            topo.node_name(link.v),
            aug.extra[l.index()],
            link.capacity
        );
    }
    if upgraded.len() > 5 {
        println!("    ... and {} more", upgraded.len() - 5);
    }
}
